package core

import (
	"fmt"
	"runtime"
	"time"
)

// Model identifies an update model.
type Model int

const (
	// ModelHybrid selects between ROP and COP each iteration using the
	// I/O-based performance prediction method (§3.4) — the paper's
	// default.
	ModelHybrid Model = iota
	// ModelROP forces Row-oriented Push in every iteration.
	ModelROP
	// ModelCOP forces Column-oriented Pull in every iteration.
	ModelCOP
)

// String names the model as in the paper's figures.
func (m Model) String() string {
	switch m {
	case ModelHybrid:
		return "Hybrid"
	case ModelROP:
		return "ROP"
	case ModelCOP:
		return "COP"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel parses "hybrid", "rop" or "cop" (case-insensitive enough for
// CLI use).
func ParseModel(s string) (Model, error) {
	switch s {
	case "hybrid", "Hybrid", "auto":
		return ModelHybrid, nil
	case "rop", "ROP", "push":
		return ModelROP, nil
	case "cop", "COP", "pull":
		return ModelCOP, nil
	default:
		return ModelHybrid, fmt.Errorf("core: unknown model %q (want hybrid|rop|cop)", s)
	}
}

// DefaultAlpha is the paper's empirical threshold: the ROP/COP cost
// comparison is only evaluated while active vertices are below 5% of |V|
// (§3.4); above it COP is selected unconditionally.
const DefaultAlpha = 0.05

// Config controls an engine run.
type Config struct {
	// Threads is the worker-thread count (§3.5); 0 means GOMAXPROCS.
	Threads int
	// Model forces an update model; ModelHybrid enables prediction.
	Model Model
	// Alpha overrides the active-fraction threshold; 0 means DefaultAlpha.
	// Negative values disable the shortcut (always compare costs).
	Alpha float64
	// MaxIters bounds the iteration count; 0 means run to convergence
	// (with a safety cap).
	MaxIters int
	// Tolerance, if positive, stops Additive programs once the largest
	// per-vertex value change in an iteration falls below it.
	Tolerance float64
	// SemiExternal caches all vertex values in memory, charging only edge
	// I/O — the FlashGraph/Graphene configuration the paper's §5
	// discusses ("stores the vertex values in memory and adjacency lists
	// on SSDs"). The engine additionally pins every out-index resident at
	// run start (read and charged once), so ROP iterations pay only for
	// the edge payload ranges they touch. An extension beyond the paper's
	// evaluated system; composes with compressed stores, which shrink the
	// remaining edge I/O further.
	SemiExternal bool
	// SemBudgetBytes, when positive, is the memory budget the
	// semi-external residency must fit in: vertex value/degree arrays
	// plus all pinned out-indices. Run fails fast with a sizing message
	// when the graph needs more; 0 skips the check (assume it fits).
	// Ignored unless SemiExternal is set.
	SemBudgetBytes int64
	// CheckpointEvery persists a resumable checkpoint (vertex values,
	// frontier, program state) to the store every N iterations; 0
	// disables. Use with Resume for long out-of-core jobs.
	CheckpointEvery int
	// Resume restarts from the program's persisted checkpoint when one
	// exists (otherwise the run starts fresh). Corrupt or truncated
	// checkpoint generations are skipped — the engine falls back to the
	// previous good generation and reports it in Result.Recovery.
	Resume bool
	// ReadRetries re-attempts block/index/aux reads that fail with an
	// error classified transient (storage.ErrTransient) up to this many
	// times each, with exponential backoff; 0 disables retrying and
	// surfaces the first transient fault. Retries are counted in
	// IterStats.Retries and Result.Recovery.
	ReadRetries int
	// RetryBackoff is the sleep before the first retry, doubled on each
	// subsequent retry; 0 with ReadRetries > 0 defaults to 1ms.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff growth; 0 with
	// ReadRetries > 0 defaults to 250ms.
	RetryBackoffMax time.Duration
	// RetryJitter scatters each backoff sleep uniformly over
	// [1-j, 1+j) of its nominal value so concurrent prefetch workers
	// don't retry a recovering device in lockstep. 0 with ReadRetries > 0
	// defaults to 0.2; negative disables jitter (deterministic doubling).
	RetryJitter float64
	// ReadDeadline is the soft deadline for every block/index/aux read
	// attempt: an attempt still pending at the deadline gets a hedged
	// duplicate read issued, first response wins (hedges are counted in
	// IterStats.Hedges and Result.Recovery.Hedges). 0 disables deadlines
	// and hedging — a hung read then blocks forever.
	ReadDeadline time.Duration
	// NoHedge keeps ReadDeadline as a latency-pressure signal for the
	// degradation breaker but suppresses the hedged duplicate read.
	NoHedge bool
	// Degrade enables the adaptive degradation ladder: a windowed
	// fault-rate/latency circuit breaker that sheds optimism under
	// sustained I/O pressure (speculation depth → pipeline off → prefetch
	// off → synchronous cache-bypass reads) and re-arms one rung per
	// clear window. Transitions are recorded in Result.Recovery as
	// DegradeEvents; the per-iteration rung lands in
	// IterStats.DegradeLevel. Results stay bit-identical at every rung.
	Degrade bool
	// DegradeWindow is the breaker's observation window; 0 with Degrade
	// defaults to 100ms.
	DegradeWindow time.Duration
	// DegradeRate is the windowed (faults+slow-reads)/ops fraction at or
	// above which the ladder steps down one rung; 0 with Degrade defaults
	// to 0.5.
	DegradeRate float64
	// PrefetchDepth is the number of asynchronous block-prefetch workers
	// overlapping I/O with compute: while the engine processes one block,
	// up to this many further blocks of the planned traversal are read,
	// verified and decoded ahead of time. 0 disables asynchronous
	// prefetching — block loads run inline on the consume path (a
	// configured cache is still consulted), which is byte- and
	// result-identical to the pipelined configuration.
	PrefetchDepth int
	// CacheBudgetBytes bounds the decoded-block LRU cache retained across
	// iterations: in-blocks and out-indices that fit are served from
	// memory on re-read, charging no device I/O (GraphMP-style
	// semi-external caching at block granularity). 0 disables caching;
	// working sets over the budget degrade gracefully by evicting
	// least-recently-used blocks. Hit/miss/evict counts land in
	// IterStats and Result.Cache.
	CacheBudgetBytes int64
	// PipelineIters enables cross-iteration read pipelining and sets its
	// depth k: once an iteration's own reads are all in flight, the
	// scheduler speculatively reads provisional plans for the next k
	// iterations (the full column scan after a dense COP iteration, the
	// rows already activated in a growing monotone frontier after ROP, the
	// value-delta prediction for additive/incremental programs) so the
	// device stays busy through the barriers. Up to k speculative batches
	// wait parked at the barrier; each is adopted by the iteration it
	// targeted. Speculation the final plan diverges from is invalidated
	// and counted as unused read-ahead; consumed speculation is
	// attributed — I/O and cache statistics both — to the iteration that
	// consumes it, with IterStats.SpecDepth recording how many barriers
	// early it was issued. 0 disables. Requires PrefetchDepth (defaulted
	// to 2 when unset).
	PipelineIters int
	// CacheAdmission names the block-cache insert policy under eviction
	// pressure: "tinylfu" (default — frequency-gated admission protecting
	// hot blocks from one-pass scans) or "lru" (always admit).
	CacheAdmission string
	// OnIteration, if set, is called after each iteration completes with
	// that iteration's statistics — for live progress reporting. It runs
	// on the engine goroutine; keep it fast.
	OnIteration func(IterStats)
	// Owner scopes the engine to a subset of the layout's intervals: its
	// planners, predictors and executors then cover only owned ROP rows,
	// COP columns and finalization sweeps. nil means all intervals — the
	// classic single-engine configuration. The shard coordinator
	// (internal/shard) runs K engines with disjoint contiguous owners over
	// the same store; owners must list intervals ascending and span the
	// layout's P (validated at New).
	Owner IntervalOwner
	// COPBlockSkip skips streaming in-block(j,i) when source interval j
	// holds no active vertices — GridGraph's block-level selective
	// scheduling grafted onto COP. The paper's Alg. 3 streams every
	// block (off by default); enable to ablate the design gap between
	// block-level and vertex-level selectivity.
	COPBlockSkip bool

	// degradeNow replaces time.Now inside the degradation breaker for
	// deterministic ladder tests; nil uses time.Now.
	degradeNow func() time.Time
}

// WithDefaults returns the config with zero fields resolved to their
// defaults — the view an engine built from this config actually runs with.
// The shard coordinator uses it so its run loop (iteration bound,
// tolerance, checkpoint cadence) agrees with its engines'.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 100000
	}
	if c.ReadRetries > 0 {
		if c.RetryBackoff == 0 {
			c.RetryBackoff = time.Millisecond
		}
		if c.RetryBackoffMax == 0 {
			c.RetryBackoffMax = 250 * time.Millisecond
		}
		if c.RetryJitter == 0 {
			c.RetryJitter = 0.2
		}
	}
	if c.RetryJitter < 0 {
		c.RetryJitter = 0
	}
	if c.Degrade {
		if c.DegradeWindow <= 0 {
			c.DegradeWindow = 100 * time.Millisecond
		}
		if c.DegradeRate <= 0 {
			c.DegradeRate = 0.5
		}
	}
	if c.PipelineIters > 0 && c.PrefetchDepth <= 0 {
		// Cross-iteration speculation needs an async pipeline to run in.
		c.PrefetchDepth = 2
	}
	return c
}
