package core

import (
	"testing"

	"husgraph/internal/blockstore"
	"husgraph/internal/ioplan"
	"husgraph/internal/storage"
)

func TestDeltaTrackerLifecycle(t *testing.T) {
	vd := newDeltaTracker(3, AllIntervals(3).Intervals())

	// A fresh tracker has no published intervals and no previous
	// iteration: it must decline rather than guess.
	if _, ok := vd.estimate(); ok {
		t.Fatal("fresh tracker produced an estimate")
	}

	// Partially-published live data with no prev fallback still declines —
	// an estimate missing intervals would systematically under-predict.
	vd.noteInterval(0, 5, 2.5, 4)
	if _, ok := vd.estimate(); ok {
		t.Fatal("partial live data without a prev mirror produced an estimate")
	}

	// A full sweep estimates from live data alone.
	vd.noteInterval(1, 0, 0, 0)
	vd.noteInterval(2, 1, 1, 2)
	est, ok := vd.estimate()
	if !ok {
		t.Fatal("full live sweep declined")
	}
	if est.active != 6 || est.maxDelta != 2.5 {
		t.Fatalf("live estimate = %+v", est)
	}
	if !est.rows[0] || est.rows[1] || !est.rows[2] {
		t.Fatalf("live rows = %v", est.rows)
	}

	// rotate moves live into prev; the next iteration's early gate (no
	// intervals finalized yet) estimates from the mirror.
	vd.rotate()
	est, ok = vd.estimate()
	if !ok || est.active != 6 || est.maxDelta != 2.5 {
		t.Fatalf("prev-mirror estimate = %+v ok=%v", est, ok)
	}

	// Fresh live data shadows the mirror per interval as it lands.
	vd.noteInterval(0, 0, 0, 0) // interval 0 went quiet this iteration
	est, ok = vd.estimate()
	if !ok || est.active != 2 || est.rows[0] {
		t.Fatalf("mixed estimate = %+v ok=%v", est, ok)
	}

	// rotating after an incomplete sweep (e.g. a monotone iteration that
	// never finalizes intervals) invalidates the mirror.
	vd.rotate()
	if _, ok := vd.estimate(); ok {
		t.Fatal("mirror survived an incomplete sweep")
	}
}

func TestValueDeltaProvisionalShapes(t *testing.T) {
	g := prefetchTestGraph()
	ds := buildStore(t, g, 4, storage.HDD)

	mk := func(cfg Config) *Engine {
		cfg.PrefetchDepth = 2
		cfg.PipelineIters = 2
		return New(ds, cfg)
	}

	// Monotone programs use frontier probes, never value deltas.
	if e := mk(Config{}); e.valueDeltaProvisional(testBFS{}) != nil {
		t.Fatal("monotone program got a value-delta provisional")
	}

	// Broad deltas predict the dense COP scan the α shortcut will choose.
	e := mk(Config{})
	for i := 0; i < ds.Layout.P; i++ {
		vd := e.vd
		lo, hi := ds.Layout.Bounds(i)
		vd.noteInterval(i, float64(hi-lo), 1, int64(hi-lo))
	}
	pf := e.valueDeltaProvisional(testCount{})
	if pf == nil {
		t.Fatal("additive program declined")
	}
	dense := pf(1)
	if want := ioplan.COPKeys(ds.Layout, nil); len(dense) != len(want) {
		t.Fatalf("broad-delta plan has %d keys, want the dense scan's %d", len(dense), len(want))
	}
	// Depth 2 declines: value predictions are one barrier fresh.
	if got := pf(2); got != nil {
		t.Fatalf("depth-2 value prediction returned %d keys", len(got))
	}

	// A sparse residual frontier predicts a ROP row plan over the moving
	// intervals only.
	e = mk(Config{})
	e.vd.noteInterval(0, 3, 0.5, 3)
	for i := 1; i < ds.Layout.P; i++ {
		e.vd.noteInterval(i, 0, 0, 0)
	}
	sparse := e.valueDeltaProvisional(testCount{})(1)
	if len(sparse) == 0 {
		t.Fatal("sparse residual frontier declined")
	}
	for _, k := range sparse {
		if k.Kind != blockstore.KindOutIndex || k.I != 0 {
			t.Fatalf("sparse plan strayed outside row 0: %+v", k)
		}
	}

	// A predicted below-tolerance iteration declines — the run is about to
	// converge and would only orphan the batch.
	e = mk(Config{Tolerance: 1.0})
	e.vd.noteInterval(0, 3, 0.5, 3)
	for i := 1; i < ds.Layout.P; i++ {
		e.vd.noteInterval(i, 0, 0, 0)
	}
	if got := e.valueDeltaProvisional(testCount{})(1); got != nil {
		t.Fatalf("converging run still speculated %d keys", len(got))
	}

	// No predicted activity declines.
	e = mk(Config{})
	for i := 0; i < ds.Layout.P; i++ {
		e.vd.noteInterval(i, 0, 0, 0)
	}
	if got := e.valueDeltaProvisional(testCount{})(1); got != nil {
		t.Fatalf("dead frontier still speculated %d keys", len(got))
	}
}
