package core

import (
	"math"

	"husgraph/internal/bitset"
	"husgraph/internal/blockstore"
	"husgraph/internal/graph"
	"husgraph/internal/ioplan"
)

// runCOP executes one Column-oriented Pull iteration (paper Alg. 3) over
// the engine's owned columns.
//
// For every owned interval i, the column of in-blocks (0, i)..(P-1, i) is
// streamed sequentially; within each in-block, destination vertices are
// partitioned across workers (each owns its destinations, so there are no
// write conflicts, §3.5) and pull messages from their active in-neighbors.
// After a column completes, S_i ← D_i (Alg. 3 line 20), so later columns
// pull already-updated values: monotone programs converge faster, additive
// programs become a Gauss–Seidel sweep (same fixed point). Incremental
// programs defer synchronization to iteration end — Step.FinalizeOwned
// consumes the deferred deltas (a delta must be consumed exactly once).
// The caller initializes D (InitAccumulators).
//
// Returns the largest per-vertex value change (non-Monotone only).
func (e *Engine) runCOP(prog Program, s, d []float64, frontier, next *bitset.Frontier, win *ioplan.Window, copSkip func(int) bool) (float64, error) {
	l := e.ds.Layout
	dev := e.ds.Device()
	nv := int64(blockstore.VertexValueBytes)

	// The column traversal order was handed to the scheduler as this
	// window's plan (ioplan.COPKeys with the same copSkip closure): while
	// this goroutine computes on in-block(j,i), the scheduler's workers
	// read, verify and decode the next blocks (or serve them from the
	// cache, or from the previous barrier's adopted speculation). copSkip
	// mirrors the plan exactly — every planned key is consumed by exactly
	// one Next call.
	var maxDelta float64
	for _, i := range e.owned { // column i updates interval i
		lo, hi := l.Bounds(i)
		if !e.cfg.SemiExternal {
			dev.ReadSeq(int64(l.Size(i)) * nv) // load D_i (Alg. 3 line 1)
		}

		for j := 0; j < l.P; j++ { // stream in-blocks top to bottom
			if copSkip != nil && copSkip(j) {
				continue // block-level selective scheduling (ablation)
			}
			if !e.cfg.SemiExternal {
				dev.ReadSeq(int64(l.Size(j)) * nv) // load S_j (Alg. 3 line 3)
			}
			res := win.Next()
			if res.Err != nil {
				return 0, res.Err
			}
			if e.ds.InCodec(j, i) == blockstore.CodecNone {
				// Raw fast path: uncompressed in-blocks (FormatRaw, or a
				// mixed-store block where no codec paid) iterate the packed
				// records in place — no decode pass, and the
				// per-destination parallelism covers all of the block's
				// work. Compressed in-blocks arrive decoded from the window
				// (the decode ran in the prefetch worker, overlapping I/O).
				payload, byteIdx := res.Payload, res.ByteIdx
				if len(payload) == 0 {
					res.Release()
					continue
				}
				step := blockstore.RawRecordBytes(e.ds.Weighted)
				weighted := e.ds.Weighted
				parallelWeightedChunks(byteIdx, e.cfg.Threads, func(cl, ch int) {
					for local := cl; local < ch; local++ {
						lo8, hi8 := int(byteIdx[local]), int(byteIdx[local+1])
						if lo8 == hi8 {
							continue
						}
						acc := d[lo+local]
						dirty := false
						for off := lo8; off < hi8; off += step {
							nbr, w := blockstore.RawRec(payload, off, weighted)
							if !frontier.Contains(int(nbr)) {
								continue // IsActive check (Alg. 3 line 11)
							}
							msg := prog.Message(nbr, s[nbr], w)
							if a, changed := prog.Combine(acc, msg); changed {
								acc = a
								dirty = true
							}
						}
						if dirty {
							d[lo+local] = acc
						}
					}
				})
				res.Release()
				continue
			}
			blk := blockstore.Block{Recs: res.Recs, Index: res.RecIdx}
			if len(blk.Recs) == 0 {
				res.Release()
				continue
			}
			parallelWeightedChunks(blk.Index, e.cfg.Threads, func(cl, ch int) {
				for local := cl; local < ch; local++ {
					recs := blk.EdgesOf(local)
					if len(recs) == 0 {
						continue
					}
					acc := d[lo+local]
					dirty := false
					for _, r := range recs {
						if !frontier.Contains(int(r.Nbr)) {
							continue // IsActive check (Alg. 3 line 11)
						}
						msg := prog.Message(r.Nbr, s[r.Nbr], r.Weight)
						if a, changed := prog.Combine(acc, msg); changed {
							acc = a
							dirty = true
						}
					}
					if dirty {
						d[lo+local] = acc
					}
				}
			})
			res.Release()
		}

		// Column finalization: activate changed vertices, synchronize
		// S_i ← D_i (Alg. 3 line 20). Incremental programs defer both to
		// iteration end.
		switch prog.Kind() {
		case Monotone:
			for v := lo; v < hi; v++ {
				if d[v] != s[v] {
					next.Add(v)
					s[v] = d[v]
				}
			}
		case Additive:
			var sumD, maxD float64
			var activated int64
			for v := lo; v < hi; v++ {
				newVal, activate := prog.Apply(graph.VertexID(v), s[v], d[v])
				delta := math.Abs(newVal - s[v])
				sumD += delta
				if delta > maxD {
					maxD = delta
				}
				s[v] = newVal
				if activate {
					next.Add(v)
					activated++
				}
			}
			if maxD > maxDelta {
				maxDelta = maxD
			}
			if e.vd != nil {
				// Publish this interval's deltas while later columns still
				// stream: the speculation gate predicts the next frontier
				// from them (valuedelta.go).
				e.vd.noteInterval(i, sumD, maxD, activated)
			}
		case Incremental:
			// Values synchronized after all columns.
		}
		if !e.cfg.SemiExternal {
			dev.WriteSeq(int64(l.Size(i)) * nv) // write back D_i
		}
	}
	return maxDelta, nil
}
