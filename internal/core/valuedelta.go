package core

import (
	"math"
	"sync/atomic"

	"husgraph/internal/blockstore"
	"husgraph/internal/ioplan"
)

// deltaTracker accumulates per-interval value-delta statistics while an
// iteration of a non-monotone (Additive/Incremental) program runs, so the
// speculation gate can predict the coming iteration's frontier shape from
// the values actually being produced instead of declining outright.
//
// Concurrency contract: the engine goroutine is the only writer — each
// interval's finalization publishes its totals exactly once per iteration
// via noteInterval, and rotate runs between iterations when no gate
// goroutine is alive (Finish waits for it). The gate goroutine reads
// concurrently with later intervals' writes; the per-interval done flag is
// the release/acquire edge, so estimate only ever observes fully-published
// intervals and falls back to the previous iteration's (immutable) mirror
// for the rest. The tracker's own fields are barrier-published: only the
// coordinator touches them, between iterations (huslint/barrierstats
// enforces that no spawned goroutine writes them plainly).
type deltaTracker struct {
	p int
	// owned lists the intervals this engine finalizes (ascending) — the
	// only entries noteInterval ever publishes. live/prev stay sized p so
	// interval ids index directly.
	owned []int
	live  []intervalDelta
	prev  []intervalPrev
	// prevValid reports that the previous iteration published every owned
	// interval (a full non-monotone sweep, not a fresh run or an early
	// abort), making prev usable as a fallback.
	prevValid bool
}

// intervalDelta is one interval's live accumulator; float64s travel as
// bits so the gate can read them atomically.
type intervalDelta struct {
	done    atomic.Bool
	active  atomic.Int64
	maxBits atomic.Uint64
	sumBits atomic.Uint64
}

// intervalPrev mirrors the previous iteration's published values; written
// only by rotate, read only by the gate, never concurrently. Like the
// tracker, it is barrier-published: rotate runs in the serial section
// between Finish and the next Begin.
type intervalPrev struct {
	active   int64
	maxDelta float64
	sumDelta float64
}

func newDeltaTracker(p int, owned []int) *deltaTracker {
	return &deltaTracker{
		p:     p,
		owned: owned,
		live:  make([]intervalDelta, p),
		prev:  make([]intervalPrev, p),
	}
}

// noteInterval publishes interval i's finalization totals for the running
// iteration: the summed and largest |new − old| value change and how many
// of its vertices activated for the next frontier.
func (t *deltaTracker) noteInterval(i int, sum, max float64, active int64) {
	d := &t.live[i]
	d.active.Store(active)
	d.maxBits.Store(math.Float64bits(max))
	d.sumBits.Store(math.Float64bits(sum))
	d.done.Store(true)
}

// rotate moves the completed iteration's live values into the prev mirror
// and resets the live accumulators. Call between iterations, with no gate
// goroutine running.
func (t *deltaTracker) rotate() {
	all := true
	for _, i := range t.owned {
		d := &t.live[i]
		if d.done.Load() {
			t.prev[i] = intervalPrev{
				active:   d.active.Load(),
				maxDelta: math.Float64frombits(d.maxBits.Load()),
				sumDelta: math.Float64frombits(d.sumBits.Load()),
			}
		} else {
			all = false
		}
		d.done.Store(false)
		d.active.Store(0)
		d.maxBits.Store(0)
		d.sumBits.Store(0)
	}
	t.prevValid = all
}

// deltaEstimate is the gate's view of the coming frontier: per-interval
// activity plus global totals.
type deltaEstimate struct {
	active   int64   // predicted next-frontier size
	maxDelta float64 // predicted largest per-vertex change
	rows     []bool  // rows (source intervals) predicted active
}

// estimate predicts the next iteration's frontier from whatever intervals
// the running iteration has already finalized, falling back to the
// previous iteration's totals for the rest. It declines (ok=false) when
// neither is available for some interval — the first iteration of a run,
// before any interval finalizes.
func (t *deltaTracker) estimate() (deltaEstimate, bool) {
	est := deltaEstimate{rows: make([]bool, t.p)}
	for _, i := range t.owned {
		var active int64
		var max float64
		if t.live[i].done.Load() {
			active = t.live[i].active.Load()
			max = math.Float64frombits(t.live[i].maxBits.Load())
		} else if t.prevValid {
			active = t.prev[i].active
			max = t.prev[i].maxDelta
		} else {
			return deltaEstimate{}, false
		}
		est.active += active
		if max > est.maxDelta {
			est.maxDelta = max
		}
		est.rows[i] = active > 0
	}
	return est, true
}

// valueDeltaProvisional is the speculation generator for non-monotone
// programs, whose next frontier is only known after finalization rebuilds
// it: predict it from the value deltas instead (ISSUE 5's value-delta
// heuristic). Broad predicted activity means the α shortcut will choose
// the dense, frontier-independent COP scan; a sparse residual frontier
// means a ROP row plan over the intervals still moving. A predicted
// below-tolerance iteration declines — the run is about to converge and
// speculation would only produce an orphan batch. Divergence costs nothing
// correctness-wise: the next Begin invalidates non-overlapping keys
// exactly as for every other provisional plan.
func (e *Engine) valueDeltaProvisional(prog Program) ioplan.ProvisionalFunc {
	if e.vd == nil || prog.Kind() == Monotone {
		return nil
	}
	l := e.ds.Layout
	return func(depth int) []blockstore.BlockKey {
		if depth > 1 {
			// Value predictions are one barrier fresh: depth 2 would need
			// iteration i+1's deltas, which do not exist yet.
			return nil
		}
		est, ok := e.vd.estimate()
		if !ok || est.active == 0 {
			return nil
		}
		if e.cfg.Tolerance > 0 && est.maxDelta < e.cfg.Tolerance {
			return nil // converging: the next iteration will not run
		}
		if e.cfg.Model != ModelROP && float64(est.active) > e.cfg.Alpha*float64(l.NumVertices) {
			// Broad deltas: the α shortcut will pick the dense COP scan.
			// (A shard's est.active is its owned activity only — it may
			// under-predict a globally dense frontier, costing speculation
			// accuracy, never correctness: divergent plans are invalidated
			// at the next Begin.)
			return ioplan.COPKeysFor(l, nil, e.ownedOrNil())
		}
		// Sparse residual frontier: a ROP row plan over the owned intervals
		// whose values are still moving.
		if e.semIdx != nil {
			return nil // ROP plans are out-indices, pinned resident under -sem
		}
		plan := make([]blockstore.BlockKey, 0, l.P*l.P)
		for _, i := range e.owned {
			if !est.rows[i] {
				continue
			}
			for j := 0; j < l.P; j++ {
				if e.ds.BlockEdgeCount[i][j] != 0 {
					plan = append(plan, blockstore.BlockKey{Kind: blockstore.KindOutIndex, I: i, J: j})
				}
			}
		}
		return plan
	}
}
