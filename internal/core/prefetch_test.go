package core

import (
	"errors"
	"testing"

	"husgraph/internal/bitset"
	"husgraph/internal/graph"
	"husgraph/internal/storage"
)

// prefetchTestGraph is a mid-size graph with edges in every block of a 4x4
// grid, so both executors touch many blocks per iteration.
func prefetchTestGraph() *graph.Graph {
	g := graph.New(600)
	for i := 0; i < 600; i++ {
		g.AddEdge(graph.VertexID(i), graph.VertexID((i*17+1)%600))
		g.AddEdge(graph.VertexID(i), graph.VertexID((i*5+11)%600))
		g.AddEdge(graph.VertexID(i), graph.VertexID((i*131+29)%600))
	}
	return g
}

func TestPrefetchAndCacheBitIdenticalValues(t *testing.T) {
	// The acceptance bar for the whole pipeline: any combination of
	// prefetch depth and cache budget must produce per-vertex values
	// bit-identical to the synchronous path, with the same iteration
	// trajectory (same model choices, same iteration count).
	g := prefetchTestGraph()
	variants := []Config{
		{},
		{PrefetchDepth: 2},
		{PrefetchDepth: 4},
		{CacheBudgetBytes: 64 << 20},
		{PrefetchDepth: 2, CacheBudgetBytes: 64 << 20},
	}
	for _, model := range []Model{ModelROP, ModelCOP, ModelHybrid} {
		var ref *Result
		for vi, extra := range variants {
			cfg := extra
			cfg.Model = model
			cfg.Threads = 4
			ds := buildStore(t, g, 4, storage.HDD)
			res, err := New(ds, cfg).Run(testBFS{})
			if err != nil {
				t.Fatalf("%v variant %d: %v", model, vi, err)
			}
			if vi == 0 {
				ref = res
				continue
			}
			if res.NumIterations() != ref.NumIterations() {
				t.Fatalf("%v variant %d: %d iterations, want %d", model, vi, res.NumIterations(), ref.NumIterations())
			}
			for it := range res.Iterations {
				if res.Iterations[it].Model != ref.Iterations[it].Model {
					t.Fatalf("%v variant %d iter %d: model %v, want %v", model, vi, it, res.Iterations[it].Model, ref.Iterations[it].Model)
				}
			}
			for v := range ref.Values {
				if res.Values[v] != ref.Values[v] {
					t.Fatalf("%v variant %d: value[%d] = %v, want %v", model, vi, v, res.Values[v], ref.Values[v])
				}
			}
		}
	}
}

func TestPrefetchDepthDoesNotChangeIO(t *testing.T) {
	// Without a cache, the pipeline reads exactly the blocks the
	// synchronous path reads — read-ahead changes when I/O happens, never
	// what is read. Totals must match byte for byte.
	g := prefetchTestGraph()
	for _, model := range []Model{ModelROP, ModelCOP} {
		run := func(depth int) *Result {
			ds := buildStore(t, g, 4, storage.HDD)
			res, err := New(ds, Config{Model: model, Threads: 4, PrefetchDepth: depth}).Run(testBFS{})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		sync, async := run(0), run(3)
		if s, a := sync.TotalIO(), async.TotalIO(); s != a {
			t.Fatalf("%v: prefetch changed device traffic: sync %+v async %+v", model, s, a)
		}
		if async.PrefetchUnusedBytes != 0 {
			t.Fatalf("%v: healthy run wasted %d prefetched bytes", model, async.PrefetchUnusedBytes)
		}
	}
}

func TestCacheCutsRepeatIterationIO(t *testing.T) {
	// COP re-streams every in-block each iteration; with an adequate
	// budget, iteration 1+ must hit the cache for all of them and read
	// far fewer device bytes than iteration 0 — with identical values.
	g := prefetchTestGraph()
	uncached := func() *Result {
		ds := buildStore(t, g, 4, storage.HDD)
		res, err := New(ds, Config{Model: ModelCOP, MaxIters: 3}).Run(testCount{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	ds := buildStore(t, g, 4, storage.HDD)
	res, err := New(ds, Config{Model: ModelCOP, MaxIters: 3, CacheBudgetBytes: 64 << 20}).Run(testCount{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range uncached.Values {
		if res.Values[v] != uncached.Values[v] {
			t.Fatalf("cache changed value[%d]", v)
		}
	}
	it0, it1 := res.Iterations[0], res.Iterations[1]
	if it0.CacheMisses == 0 || it0.CacheHits != 0 {
		t.Fatalf("iteration 0 cache deltas: %+v", it0)
	}
	if it1.CacheHits == 0 || it1.CacheMisses != 0 {
		t.Fatalf("iteration 1 cache deltas: hits=%d misses=%d", it1.CacheHits, it1.CacheMisses)
	}
	if r0, r1 := it0.IO.ReadBytes(), it1.IO.ReadBytes(); r1 >= r0 {
		t.Fatalf("cached iteration read %d bytes, first read %d", r1, r0)
	}
	if it1.IOTime >= it0.IOTime {
		t.Fatalf("cached iteration I/O time %v not below first %v", it1.IOTime, it0.IOTime)
	}
	// Per-iteration deltas must sum to the final snapshot.
	var hits, misses int64
	for _, it := range res.Iterations {
		hits += it.CacheHits
		misses += it.CacheMisses
	}
	if hits != res.Cache.Hits || misses != res.Cache.Misses {
		t.Fatalf("iteration deltas (%d/%d) don't sum to snapshot (%d/%d)", hits, misses, res.Cache.Hits, res.Cache.Misses)
	}
	if res.Cache.BytesUsed <= 0 || res.Cache.Entries <= 0 {
		t.Fatalf("final cache residency empty: %+v", res.Cache)
	}
}

func TestCacheAwarePredictorPricesResidentBlocksFree(t *testing.T) {
	// After a COP iteration populates the cache, the predictor must price
	// the resident in-blocks at zero — C_cop drops below the cold
	// prediction (this is what keeps the hybrid choice honest once the
	// working set is resident).
	g := prefetchTestGraph()
	ds := buildStore(t, g, 4, storage.HDD)
	warm := New(ds, Config{Model: ModelCOP, MaxIters: 1, CacheBudgetBytes: 64 << 20})
	if _, err := warm.Run(testCount{}); err != nil {
		t.Fatal(err)
	}
	cold := New(ds, Config{})
	frontier := bitset.FullFrontier(600)
	cropCold, ccopCold := cold.predict(frontier)
	cropWarm, ccopWarm := warm.predict(frontier)
	if ccopWarm >= ccopCold {
		t.Fatalf("warm C_cop %v not below cold %v", ccopWarm, ccopCold)
	}
	if cropWarm > cropCold {
		t.Fatalf("warm C_rop %v above cold %v", cropWarm, cropCold)
	}
}

func TestEnginePrefetchRetriesTransientFaults(t *testing.T) {
	// PR-1's fault-injection semantics must survive the move into the
	// prefetch workers: transient faults are retried with backoff inside
	// the pipeline, counted in the result, and leave values untouched.
	clean, err := New(buildStore(t, pathGraph(300), 4, storage.HDD), Config{Model: ModelCOP}).Run(testBFS{})
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []Model{ModelCOP, ModelROP} {
		ds, fs := faultyStore(t, 300, 4, 1)
		fs.Inject(
			storage.Fault{Op: storage.OpRead, Kind: storage.FaultTransient, After: 3, Count: 2},
			storage.Fault{Op: storage.OpRead, Kind: storage.FaultTransient, After: 20, Count: 3},
		)
		res, err := New(ds, Config{Model: model, Threads: 2, PrefetchDepth: 2, ReadRetries: 3, RetryBackoff: 1}).Run(testBFS{})
		if err != nil {
			t.Fatalf("%v: transient faults with retries enabled failed the run: %v", model, err)
		}
		for v := range clean.Values {
			if clean.Values[v] != res.Values[v] {
				t.Fatalf("%v: retried run diverged at vertex %d", model, v)
			}
		}
		if res.Recovery.Retries != 5 {
			t.Fatalf("%v: Recovery.Retries = %d, want 5", model, res.Recovery.Retries)
		}
		if got := res.TotalRetries(); got != 5 {
			t.Fatalf("%v: summed IterStats.Retries = %d, want 5", model, got)
		}
	}
}

func TestEnginePrefetchSurfacesPermanentFaults(t *testing.T) {
	// A permanent fault inside a prefetch worker must become the iteration
	// error — promptly, on every configuration, never a hang (the test
	// completing is the no-hang assertion).
	for _, model := range []Model{ModelCOP, ModelROP} {
		for _, depth := range []int{1, 2, 4} {
			ds, fs := faultyStore(t, 300, 4, 1)
			fs.Inject(storage.Fault{Op: storage.OpRead, Kind: storage.FaultPermanent, After: 2})
			_, err := New(ds, Config{Model: model, Threads: 4, PrefetchDepth: depth}).Run(testBFS{})
			if err == nil {
				t.Fatalf("%v depth=%d: injected permanent fault not surfaced", model, depth)
			}
			if !errors.Is(err, storage.ErrPermanent) {
				t.Fatalf("%v depth=%d: error chain lost the cause: %v", model, depth, err)
			}
		}
	}
}
