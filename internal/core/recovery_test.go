package core_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"husgraph/internal/algos"
	"husgraph/internal/blockstore"
	"husgraph/internal/core"
	"husgraph/internal/gen"
	"husgraph/internal/graph"
	"husgraph/internal/storage"
)

func testGraph() *graph.Graph {
	return gen.RMAT(2000, 8000, gen.Graph500, rand.New(rand.NewSource(1)))
}

func fileStore(t *testing.T, g *graph.Graph, p int) (*blockstore.DualStore, string) {
	t.Helper()
	dir := t.TempDir()
	fs, err := storage.NewFileStore(storage.NewDevice(storage.SSD), dir)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := blockstore.Build(fs, g, p)
	if err != nil {
		t.Fatal(err)
	}
	return ds, dir
}

func reopen(t *testing.T, dir string) *blockstore.DualStore {
	t.Helper()
	fs, err := storage.NewFileStore(storage.NewDevice(storage.SSD), dir)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := blockstore.Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestEngineMatrixOverFileStore runs BFS and PageRank under every update
// model over a real on-disk FileStore and checks the results are
// bit-identical to the same run over MemStore: the checksummed frame layer
// and the filesystem round trip must be invisible to the algorithms.
func TestEngineMatrixOverFileStore(t *testing.T) {
	g := testGraph()
	const p = 4
	programs := []struct {
		name string
		prog core.Program
		cfg  core.Config
	}{
		{"BFS", algos.BFS{Source: gen.BFSSource(g)}, core.Config{Threads: 4}},
		{"PageRank", &algos.PageRank{}, core.Config{Threads: 4, Tolerance: 1e-10, MaxIters: 500}},
	}
	models := []core.Model{core.ModelROP, core.ModelCOP, core.ModelHybrid}

	mem, err := blockstore.Build(storage.NewMemStore(storage.NewDevice(storage.SSD)), g, p)
	if err != nil {
		t.Fatal(err)
	}

	for _, pc := range programs {
		want := make(map[core.Model][]float64)
		for _, m := range models {
			cfg := pc.cfg
			cfg.Model = m
			res, err := core.New(mem, cfg).Run(pc.prog)
			if err != nil {
				t.Fatalf("%s/%v over MemStore: %v", pc.name, m, err)
			}
			want[m] = res.Values
		}
		for _, m := range models {
			t.Run(pc.name+"/"+m.String(), func(t *testing.T) {
				ds, _ := fileStore(t, g, p)
				cfg := pc.cfg
				cfg.Model = m
				res, err := core.New(ds, cfg).Run(pc.prog)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatal("did not converge")
				}
				for v := range res.Values {
					if res.Values[v] != want[m][v] {
						t.Fatalf("vertex %d: FileStore %v != MemStore %v", v, res.Values[v], want[m][v])
					}
				}
			})
		}
	}
}

// TestKillAndResumeBitIdentical cancels a checkpointed PageRank run
// mid-flight, reopens the store cold (as a crashed process restarting
// would), resumes, and checks the final values are bit-identical to an
// uninterrupted run.
func TestKillAndResumeBitIdentical(t *testing.T) {
	g := testGraph()
	base := core.Config{Model: core.ModelHybrid, Threads: 4, Tolerance: 1e-10, MaxIters: 500}

	ds, _ := fileStore(t, g, 4)
	full, err := core.New(ds, base).Run(&algos.PageRank{})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Converged {
		t.Fatal("reference run did not converge")
	}

	ds2, dir := fileStore(t, g, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := base
	cfg.CheckpointEvery = 3
	cfg.OnIteration = func(st core.IterStats) {
		if st.Iter == 4 {
			cancel() // "kill" the process after five completed iterations
		}
	}
	_, err = core.New(ds2, cfg).RunContext(ctx, &algos.PageRank{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}

	// Restart: fresh store handle over the same directory, no shared state.
	cfg = base
	cfg.CheckpointEvery = 3
	cfg.Resume = true
	res, err := core.New(reopen(t, dir), cfg).Run(&algos.PageRank{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("resumed run did not converge")
	}
	if res.Recovery.ResumedIter == 0 {
		t.Fatal("resumed run started fresh; expected a checkpoint")
	}
	for v := range full.Values {
		if res.Values[v] != full.Values[v] {
			t.Fatalf("vertex %d: resumed %v != uninterrupted %v", v, res.Values[v], full.Values[v])
		}
	}
}

// TestGenerationFallbackOverFileStore corrupts the newest checkpoint
// generation on disk — a crash torn through a non-atomic filesystem, bit
// rot, whatever — and checks Resume falls back to the previous generation
// and still converges to the uninterrupted run's values.
func TestGenerationFallbackOverFileStore(t *testing.T) {
	g := gen.Path(40)
	src := graph.VertexID(0)

	ds, _ := fileStore(t, g, 4)
	full, err := core.New(ds, core.Config{Model: core.ModelCOP}).Run(algos.BFS{Source: src})
	if err != nil {
		t.Fatal(err)
	}

	// Partial run with a checkpoint every iteration: after three
	// iterations slot g0 holds iteration 3 (newest) and g1 holds 2.
	ds2, dir := fileStore(t, g, 4)
	if _, err := core.New(ds2, core.Config{Model: core.ModelCOP, MaxIters: 3, CheckpointEvery: 1}).Run(algos.BFS{Source: src}); err != nil {
		t.Fatal(err)
	}

	newest := filepath.Join(dir, "aux", "ckpt-BFS.g0")
	//lint:ignore huslint/rawio deliberate out-of-band tampering: the test truncates the checkpoint behind the store's back to simulate a torn write
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore huslint/rawio deliberate out-of-band tampering: writing the truncated checkpoint must bypass the store's checksumming
	if err := os.WriteFile(newest, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := core.New(reopen(t, dir), core.Config{Model: core.ModelCOP, Resume: true}).Run(algos.BFS{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.CheckpointFallbacks != 1 {
		t.Fatalf("CheckpointFallbacks = %d, want 1", res.Recovery.CheckpointFallbacks)
	}
	if res.Recovery.ResumedIter != 2 {
		t.Fatalf("ResumedIter = %d, want 2 (the surviving generation)", res.Recovery.ResumedIter)
	}
	if !res.Converged {
		t.Fatal("fallback run did not converge")
	}
	for v := range full.Values {
		if res.Values[v] != full.Values[v] {
			t.Fatalf("vertex %d: fallback %v != uninterrupted %v", v, res.Values[v], full.Values[v])
		}
	}
}
