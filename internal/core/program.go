// Package core implements the HUS-Graph engine: the hybrid ROP/COP update
// strategy over the dual-block representation with I/O-based performance
// prediction, as described in §3 of the paper.
//
// # Update models
//
// Row-oriented Push (ROP, Alg. 2) traverses only the out-edges of active
// vertices, loading each active vertex's edge range from the out-blocks
// with one random access, and pushes updates to destinations. Out-blocks of
// one row have disjoint destination intervals, so they are processed by
// overlapping worker threads (§3.5).
//
// Column-oriented Pull (COP, Alg. 3) streams every in-block of an
// interval's column sequentially; each destination vertex pulls from its
// active in-neighbors. Destinations within a block are partitioned across
// worker threads without write conflicts (§3.5).
//
// # Model selection
//
// The engine selects between ROP and COP per iteration with the paper's
// I/O-based cost comparison (§3.4): C_rop, the predicted cost of loading
// the active out-edges randomly plus the vertex working set, against
// C_cop, the predicted cost of streaming all in-edges plus the same vertex
// working set. The comparison is only evaluated while the active-vertex
// count is below α·|V| (default α = 5%); above that COP is chosen outright.
//
// The paper's Algorithm 1 nominally selects per interval, but a mixed
// assignment loses updates (an edge from a COP-chosen source interval into
// a ROP-chosen destination interval is traversed by neither model), and the
// paper's own evaluation (Fig. 8) assesses the choice per iteration; this
// implementation therefore decides globally per iteration.
//
// # Program semantics
//
// Programs declare one of two kinds. Monotone programs (BFS, WCC, SSSP)
// have idempotent, order-insensitive combines; the engine uses the paper's
// eager per-row/per-column value synchronization for them, which speeds up
// in-iteration propagation. Additive programs (PageRank variants) sum
// contributions; re-application is not idempotent, so in ROP the engine
// defers value synchronization to the end of the iteration (synchronous
// update), while in COP each interval's column completes its accumulator
// before the eager swap (Gauss–Seidel update), matching the paper's
// execution order safely.
package core

import (
	"husgraph/internal/bitset"
	"husgraph/internal/graph"
)

// Kind classifies a vertex program's combine semantics.
type Kind int

const (
	// Monotone programs combine by an idempotent improvement operator
	// (min/max); accumulators carry the previous value. The engine uses
	// the paper's eager per-row/per-column value synchronization.
	Monotone Kind = iota
	// Additive programs recompute each vertex from scratch every
	// iteration by summing contributions; accumulators start from zero
	// and Apply finalizes them. Eager column synchronization in COP is a
	// Gauss–Seidel sweep with the same fixed point; in ROP
	// synchronization is deferred to iteration end (partial row sums must
	// not become sources).
	Additive
	// Incremental programs are additive but propagate per-iteration
	// deltas rather than full recomputations (PageRank-Delta). A delta
	// must be consumed exactly once, so the engine defers all value
	// synchronization and Apply calls to iteration end in both models.
	Incremental
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Monotone:
		return "monotone"
	case Additive:
		return "additive"
	case Incremental:
		return "incremental"
	default:
		return "unknown"
	}
}

// Context gives programs access to static graph properties.
type Context struct {
	NumVertices int
	OutDegrees  []int32
	InDegrees   []int32
}

// OutDegree returns the out-degree of v.
func (c *Context) OutDegree(v graph.VertexID) int32 { return c.OutDegrees[v] }

// Program is a vertex program in the paper's user-defined-function style:
// updates propagate from source to destination vertices through edges, with
// the engine deciding whether to push (ROP) or pull (COP) them.
//
// Implementations must be safe for concurrent calls to Message and Combine
// from multiple worker threads. Apply is called at most once per vertex per
// iteration, never concurrently for the same vertex.
type Program interface {
	// Name identifies the program in reports.
	Name() string
	// Kind declares the combine semantics (see Kind).
	Kind() Kind
	// NeedsSymmetric reports whether the program requires each edge to be
	// present in both directions (WCC over directed input).
	NeedsSymmetric() bool
	// Init returns the initial vertex values and initial frontier.
	Init(ctx *Context) ([]float64, *bitset.Frontier)
	// Message computes the value carried from src (current value srcVal)
	// along an out-edge with the given weight.
	Message(src graph.VertexID, srcVal float64, weight float32) float64
	// Combine folds msg into the destination's accumulator, reporting
	// whether the accumulator changed.
	Combine(acc, msg float64) (changed float64, didChange bool)
	// Apply finalizes a vertex after all combines of an iteration: given
	// the previous value and final accumulator it returns the new value
	// and whether the vertex is active next iteration. For Monotone
	// programs the engine activates on combine-change and Apply is used
	// only at column/iteration finalization.
	Apply(v graph.VertexID, prev, acc float64) (newVal float64, activate bool)
}
