package core

import (
	"testing"

	"husgraph/internal/bitset"
	"husgraph/internal/blockstore"
	"husgraph/internal/storage"
)

// Boundary behavior of the §3.4 predictor: the extremes of the frontier
// spectrum, monotonicity in between, and the run-granular cache discounts.

func TestPredictEmptyFrontierCostsNothingForROP(t *testing.T) {
	ds := buildStore(t, prefetchTestGraph(), 4, storage.HDD)
	e := New(ds, Config{})
	crop, ccop := e.predict(bitset.NewFrontier(600))
	if crop != 0 {
		t.Fatalf("C_rop = %v for an empty frontier, want 0", crop)
	}
	// COP's column streams are frontier-independent — full price even with
	// nothing active (this is why the engine, not the predictor, detects
	// convergence).
	if ccop <= 0 {
		t.Fatalf("C_cop = %v for an empty frontier, want the full scan cost", ccop)
	}
}

func TestPredictMonotoneInFrontierWithInvariantCOP(t *testing.T) {
	ds := buildStore(t, prefetchTestGraph(), 4, storage.HDD)
	e := New(ds, Config{})

	frontiers := []*bitset.Frontier{
		frontierWith(600, 0),                // one vertex, one row
		frontierWith(600, 0, 20, 110),       // several vertices, one row
		frontierWith(600, 0, 200, 400, 580), // every row
		bitset.FullFrontier(600),
	}
	var lastCrop, refCcop int64
	for fi, f := range frontiers {
		crop, ccop := e.predict(f)
		if int64(crop) < lastCrop {
			t.Fatalf("frontier %d: C_rop %v below the smaller frontier's %v", fi, crop, lastCrop)
		}
		lastCrop = int64(crop)
		if fi == 0 {
			refCcop = int64(ccop)
		} else if int64(ccop) != refCcop {
			t.Fatalf("frontier %d: C_cop %v varies with the frontier (was %v)", fi, ccop, refCcop)
		}
	}
}

func TestPredictRanksModelsAsTheSimulatorCharges(t *testing.T) {
	// The predictor is calibrated to a 2x band (see
	// TestPredictorTracksActualCosts), so its contract at the frontier
	// extremes is: stay inside a 3x band of the measured cost even at the
	// single-vertex boundary, and rank the models correctly whenever the
	// predicted gap is decisive (outside the calibration slack). At a
	// singleton frontier C_rop overprices — it charges one positioning per
	// nonempty block of the row though one vertex touches at most its
	// out-degree — which is why close calls are settled by α, not here.
	for _, members := range [][]int{{7}, allVertices(600)} {
		measure := func(model Model) (predicted [2]int64, actual int64) {
			ds := buildStore(t, prefetchTestGraph(), 4, storage.HDD)
			e := New(ds, Config{Model: model, Threads: 4, MaxIters: 1})
			crop, ccop := e.predict(frontierWith(600, members...))
			res, err := e.Run(sparseStart{members: members})
			if err != nil {
				t.Fatal(err)
			}
			return [2]int64{int64(crop), int64(ccop)}, int64(res.Iterations[0].IOTime)
		}
		pred, ropTime := measure(ModelROP)
		_, copTime := measure(ModelCOP)
		for _, m := range []struct {
			name       string
			pred, meas int64
		}{{"C_rop", pred[0], ropTime}, {"C_cop", pred[1], copTime}} {
			if m.pred > 3*m.meas || m.meas > 3*m.pred {
				t.Fatalf("frontier size %d: %s=%d vs measured %d, outside the 3x boundary band",
					len(members), m.name, m.pred, m.meas)
			}
		}
		decisive := pred[0] >= 2*pred[1] || pred[1] >= 2*pred[0]
		if decisive && (pred[0] < pred[1]) != (ropTime < copTime) {
			t.Fatalf("frontier size %d: decisive prediction C_rop=%d vs C_cop=%d ranks against the simulator (rop=%d cop=%d)",
				len(members), pred[0], pred[1], ropTime, copTime)
		}
		if len(members) == 600 && !decisive {
			t.Fatalf("full frontier not decisively COP: C_rop=%d C_cop=%d", pred[0], pred[1])
		}
	}
}

func TestPredictDiscountsResidentRunsAndPromotedBlocks(t *testing.T) {
	// Run-granular residency discounts C_rop proportionally; a promoted
	// whole out-block prices at zero. Both discounts must strictly tighten
	// the cold prediction without ever touching C_cop.
	ds := buildStore(t, prefetchTestGraph(), 4, storage.HDD)
	e := New(ds, Config{CacheBudgetBytes: 64 << 20})
	f := bitset.FullFrontier(600)
	cropCold, ccopCold := e.predict(f)

	// Half of out-block (0,0) resident as runs.
	half := uint32(e.ds.OutBlockBytes[0][0] / 2)
	e.cache.PutRun(0, 0, 0, half, make([]byte, half), 1<<40)
	cropRuns, ccopRuns := e.predict(f)
	if cropRuns >= cropCold {
		t.Fatalf("resident runs did not discount C_rop: %v vs cold %v", cropRuns, cropCold)
	}

	// The whole block promoted: strictly cheaper again.
	e.cache.Put(blockstore.BlockKey{Kind: blockstore.KindOutBlock, I: 0, J: 0},
		&blockstore.CachedBlock{Payload: make([]byte, e.ds.OutBlockBytes[0][0])})
	cropPromoted, ccopPromoted := e.predict(f)
	if cropPromoted >= cropRuns {
		t.Fatalf("promoted block did not discount past runs: %v vs %v", cropPromoted, cropRuns)
	}
	if ccopRuns != ccopCold || ccopPromoted != ccopCold {
		t.Fatalf("out-block residency moved C_cop: cold %v runs %v promoted %v", ccopCold, ccopRuns, ccopPromoted)
	}
}

func frontierWith(n int, members ...int) *bitset.Frontier {
	f := bitset.NewFrontier(n)
	for _, m := range members {
		f.Add(m)
	}
	return f
}

func allVertices(n int) []int {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = i
	}
	return vs
}
