package core

import (
	"encoding/binary"
	"reflect"
	"testing"

	"husgraph/internal/bitset"
	"husgraph/internal/blockstore"
	"husgraph/internal/graph"
	"husgraph/internal/storage"
)

func TestCheckpointCodecRoundTrip(t *testing.T) {
	f := bitset.NewFrontier(10)
	f.Add(2)
	f.Add(7)
	c := &checkpoint{
		iter:      5,
		values:    []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		frontier:  f,
		progState: []byte("state"),
	}
	got, err := decodeCheckpoint(encodeCheckpoint(c), 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got.iter != 5 || !reflect.DeepEqual(got.values, c.values) {
		t.Fatalf("round trip: %+v", got)
	}
	if !reflect.DeepEqual(got.frontier.Members(), []int{2, 7}) {
		t.Fatalf("frontier: %v", got.frontier.Members())
	}
	if string(got.progState) != "state" {
		t.Fatalf("progState: %q", got.progState)
	}
}

func TestCheckpointCodecRejectsCorrupt(t *testing.T) {
	f := bitset.NewFrontier(4)
	c := &checkpoint{iter: 1, values: make([]float64, 4), frontier: f}
	good := encodeCheckpoint(c)
	cases := map[string][]byte{
		"magic":        append([]byte("NOPE"), good[4:]...),
		"short":        good[:10],
		"wrong-n":      good, // decoded with n=5 below
		"truncated":    good[:len(good)-3],
		"extra-suffix": append(append([]byte(nil), good...), 1, 2, 3),
	}
	for name, buf := range cases {
		n := 4
		if name == "wrong-n" {
			n = 5
		}
		if _, err := decodeCheckpoint(buf, n, 100); err == nil {
			t.Errorf("%s: corrupt checkpoint accepted", name)
		}
	}
}

func TestCheckpointCodecRejectsAbsurdIteration(t *testing.T) {
	f := bitset.NewFrontier(4)
	c := &checkpoint{iter: 3, values: make([]float64, 4), frontier: f}
	good := encodeCheckpoint(c)
	corrupt := func(iter uint64) []byte {
		buf := append([]byte(nil), good...)
		binary.LittleEndian.PutUint64(buf[4:], iter)
		return buf
	}
	for name, buf := range map[string][]byte{
		"huge":         corrupt(1 << 40),
		"negative":     corrupt(^uint64(0)), // decodes to int -1
		"past-maxiter": corrupt(101),
	} {
		if ck, err := decodeCheckpoint(buf, 4, 100); err == nil {
			t.Errorf("%s: absurd iteration %d accepted", name, ck.iter)
		}
	}
	// The bound itself is fine (a run checkpointed at its final iteration).
	if _, err := decodeCheckpoint(corrupt(100), 4, 100); err != nil {
		t.Errorf("iter == maxIter rejected: %v", err)
	}
}

func TestResumeMatchesUninterruptedRun(t *testing.T) {
	g := pathGraph(40)
	// Uninterrupted reference.
	full, err := New(buildStore(t, g, 4, storage.HDD), Config{Model: ModelCOP}).Run(testBFS{})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: checkpoint every 2 iterations, stop after 5.
	ds := buildStore(t, g, 4, storage.HDD)
	partial, err := New(ds, Config{Model: ModelCOP, MaxIters: 5, CheckpointEvery: 2}).Run(testBFS{})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Converged {
		t.Fatal("setup: partial run should not converge in 5 iterations")
	}
	// Resume on the same store (fresh engine, as after a crash).
	resumed, err := New(ds, Config{Model: ModelCOP, Resume: true, CheckpointEvery: 2}).Run(testBFS{})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Converged {
		t.Fatal("resumed run did not converge")
	}
	// Resumed iterations continue past the checkpoint, not from zero.
	if first := resumed.Iterations[0].Iter; first != 4 {
		t.Fatalf("resumed at iteration %d, want 4 (last checkpoint)", first)
	}
	if !reflect.DeepEqual(resumed.Values, full.Values) {
		t.Fatal("resumed values differ from uninterrupted run")
	}
}

func TestResumeWithoutCheckpointStartsFresh(t *testing.T) {
	g := pathGraph(10)
	ds := buildStore(t, g, 2, storage.HDD)
	res, err := New(ds, Config{Model: ModelROP, Resume: true}).Run(testBFS{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations[0].Iter != 0 {
		t.Fatalf("fresh resume: converged=%v first=%d", res.Converged, res.Iterations[0].Iter)
	}
}

func TestDeleteCheckpoint(t *testing.T) {
	g := pathGraph(20)
	ds := buildStore(t, g, 2, storage.HDD)
	e := New(ds, Config{Model: ModelCOP, MaxIters: 3, CheckpointEvery: 1})
	if _, err := e.Run(testBFS{}); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteCheckpoint(testBFS{}); err != nil {
		t.Fatal(err)
	}
	// Deleting again is a no-op.
	if err := e.DeleteCheckpoint(testBFS{}); err != nil {
		t.Fatal(err)
	}
	// Resume now starts fresh.
	res, err := New(ds, Config{Model: ModelCOP, Resume: true}).Run(testBFS{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations[0].Iter != 0 {
		t.Fatal("checkpoint survived deletion")
	}
}

// buildStoreOn materializes g on the given mem store so tests can corrupt
// blobs behind the DualStore's back.
func buildStoreOn(t *testing.T, mem *storage.MemStore, g *graph.Graph, p int) *blockstore.DualStore {
	t.Helper()
	ds, err := blockstore.Build(mem, g, p)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCheckpointsAlternateGenerations(t *testing.T) {
	g := pathGraph(30)
	mem := storage.NewMemStore(storage.NewDevice(storage.HDD))
	ds := buildStoreOn(t, mem, g, 2)
	if _, err := New(ds, Config{Model: ModelCOP, MaxIters: 4, CheckpointEvery: 1}).Run(testBFS{}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"aux/ckpt-testBFS.g0", "aux/ckpt-testBFS.g1"} {
		if _, err := mem.ReadAll(name); err != nil {
			t.Fatalf("generation %s missing: %v", name, err)
		}
	}
}

func TestResumeFallsBackToPreviousGeneration(t *testing.T) {
	g := pathGraph(40)
	full, err := New(buildStore(t, g, 4, storage.HDD), Config{Model: ModelCOP}).Run(testBFS{})
	if err != nil {
		t.Fatal(err)
	}

	mem := storage.NewMemStore(storage.NewDevice(storage.HDD))
	ds := buildStoreOn(t, mem, g, 4)
	// Checkpoints land at iterations 2 (slot g0) and 4 (slot g1).
	if _, err := New(ds, Config{Model: ModelCOP, MaxIters: 5, CheckpointEvery: 2}).Run(testBFS{}); err != nil {
		t.Fatal(err)
	}
	// Truncate the newest generation behind the store's back — the torn
	// write a crash mid-checkpoint leaves.
	raw, err := mem.ReadAll("aux/ckpt-testBFS.g1")
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Put("aux/ckpt-testBFS.g1", raw[:len(raw)/2]); err != nil {
		t.Fatal(err)
	}

	resumed, err := New(ds, Config{Model: ModelCOP, Resume: true, CheckpointEvery: 2}).Run(testBFS{})
	if err != nil {
		t.Fatalf("resume with corrupt newest generation failed: %v", err)
	}
	if first := resumed.Iterations[0].Iter; first != 2 {
		t.Fatalf("resumed at iteration %d, want 2 (previous good generation)", first)
	}
	if resumed.Recovery.CheckpointFallbacks != 1 || resumed.Recovery.ResumedIter != 2 {
		t.Fatalf("recovery stats: %+v", resumed.Recovery)
	}
	if !reflect.DeepEqual(resumed.Values, full.Values) {
		t.Fatal("fallback resume diverged from uninterrupted run")
	}
}

func TestResumeAllGenerationsCorruptStartsFresh(t *testing.T) {
	g := pathGraph(30)
	mem := storage.NewMemStore(storage.NewDevice(storage.HDD))
	ds := buildStoreOn(t, mem, g, 2)
	if _, err := New(ds, Config{Model: ModelCOP, MaxIters: 4, CheckpointEvery: 1}).Run(testBFS{}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"aux/ckpt-testBFS.g0", "aux/ckpt-testBFS.g1"} {
		if err := mem.Put(name, []byte("garbage")); err != nil {
			t.Fatal(err)
		}
	}
	res, err := New(ds, Config{Model: ModelCOP, Resume: true}).Run(testBFS{})
	if err != nil {
		t.Fatalf("resume with all generations corrupt failed: %v", err)
	}
	if res.Iterations[0].Iter != 0 {
		t.Fatalf("resumed at %d, want fresh start", res.Iterations[0].Iter)
	}
	if res.Recovery.CheckpointFallbacks != 2 {
		t.Fatalf("fallbacks = %d, want 2", res.Recovery.CheckpointFallbacks)
	}
	if !res.Converged {
		t.Fatal("fresh run did not converge")
	}
}

func TestResumeReadsLegacySingleSlotCheckpoint(t *testing.T) {
	g := pathGraph(40)
	full, err := New(buildStore(t, g, 4, storage.HDD), Config{Model: ModelCOP}).Run(testBFS{})
	if err != nil {
		t.Fatal(err)
	}

	ds := buildStore(t, g, 4, storage.HDD)
	// Run to iteration 3 and persist its state under the pre-generation
	// blob name, as an older build would have.
	partial, err := New(ds, Config{Model: ModelCOP, MaxIters: 3}).Run(testBFS{})
	if err != nil {
		t.Fatal(err)
	}
	f := bitset.NewFrontier(40)
	f.Add(3) // frontier entering iteration 3 on the path graph
	legacy := &checkpoint{iter: 3, values: partial.Values, frontier: f}
	if err := ds.PutAux("ckpt-testBFS", encodeCheckpoint(legacy)); err != nil {
		t.Fatal(err)
	}

	resumed, err := New(ds, Config{Model: ModelCOP, Resume: true, CheckpointEvery: 2}).Run(testBFS{})
	if err != nil {
		t.Fatal(err)
	}
	if first := resumed.Iterations[0].Iter; first != 3 {
		t.Fatalf("resumed at iteration %d, want 3 (legacy checkpoint)", first)
	}
	if !reflect.DeepEqual(resumed.Values, full.Values) {
		t.Fatal("legacy resume diverged from uninterrupted run")
	}
}

// statefulCounter is an Incremental program with internal state: it
// counts, per vertex, the messages seen across the whole run; the count
// lives outside the engine-managed values, so resume only works if the
// state is checkpointed.
type statefulCounter struct {
	seen []float64
}

func (c *statefulCounter) Name() string         { return "statefulCounter" }
func (c *statefulCounter) Kind() Kind           { return Incremental }
func (c *statefulCounter) NeedsSymmetric() bool { return false }
func (c *statefulCounter) Init(ctx *Context) ([]float64, *bitset.Frontier) {
	if c.seen == nil {
		c.seen = make([]float64, ctx.NumVertices)
	}
	return make([]float64, ctx.NumVertices), bitset.FullFrontier(ctx.NumVertices)
}
func (c *statefulCounter) Message(_ graph.VertexID, _ float64, _ float32) float64 { return 1 }
func (c *statefulCounter) Combine(acc, msg float64) (float64, bool)               { return acc + msg, true }
func (c *statefulCounter) Apply(v graph.VertexID, prev, acc float64) (float64, bool) {
	c.seen[v] += acc
	return c.seen[v], c.seen[v] < 3 // run three rounds per vertex
}
func (c *statefulCounter) SaveState() []byte           { return SaveStateFloats(c.seen) }
func (c *statefulCounter) LoadState(data []byte) error { return LoadStateFloats(data, c.seen) }

func TestResumeRestoresProgramState(t *testing.T) {
	g := pathGraph(16)
	full, err := New(buildStore(t, g, 2, storage.HDD), Config{Model: ModelCOP, MaxIters: 10}).Run(&statefulCounter{})
	if err != nil {
		t.Fatal(err)
	}

	ds := buildStore(t, g, 2, storage.HDD)
	if _, err := New(ds, Config{Model: ModelCOP, MaxIters: 2, CheckpointEvery: 1}).Run(&statefulCounter{}); err != nil {
		t.Fatal(err)
	}
	resumed, err := New(ds, Config{Model: ModelCOP, MaxIters: 10, Resume: true}).Run(&statefulCounter{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed.Values, full.Values) {
		t.Fatalf("stateful resume diverged:\n  got  %v\n  want %v", resumed.Values, full.Values)
	}
}

func TestCOPBlockSkipCorrectAndCheaper(t *testing.T) {
	g := pathGraph(4000)
	run := func(skip bool) *Result {
		ds := buildStore(t, g, 8, storage.HDD)
		res, err := New(ds, Config{Model: ModelCOP, MaxIters: 3, COPBlockSkip: skip}).Run(testBFS{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, skipping := run(false), run(true)
	for v := range plain.Values {
		if plain.Values[v] != skipping.Values[v] {
			t.Fatalf("COPBlockSkip changed results at %d", v)
		}
	}
	if skipping.TotalIO().ReadBytes() >= plain.TotalIO().ReadBytes() {
		t.Fatalf("COPBlockSkip read %d, plain %d", skipping.TotalIO().ReadBytes(), plain.TotalIO().ReadBytes())
	}
}
