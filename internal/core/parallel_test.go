package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAll(t *testing.T) {
	for _, threads := range []int{1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100} {
			hits := make([]int32, n)
			parallelFor(n, threads, func(k int) {
				atomic.AddInt32(&hits[k], 1)
			})
			for k, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: index %d hit %d times", threads, n, k, h)
				}
			}
		}
	}
}

func TestParallelChunksCoversAllContiguously(t *testing.T) {
	for _, threads := range []int{1, 3, 16} {
		for _, n := range []int{0, 1, 10, 101} {
			hits := make([]int32, n)
			parallelChunks(n, threads, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("empty chunk [%d,%d)", lo, hi)
				}
				for k := lo; k < hi; k++ {
					atomic.AddInt32(&hits[k], 1)
				}
			})
			for k, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: index %d hit %d times", threads, n, k, h)
				}
			}
		}
	}
}

func TestParallelForActuallyParallel(t *testing.T) {
	// With 4 workers and a barrier-ish counter, max concurrency observed
	// should exceed 1. This is probabilistic but extremely reliable with
	// the blocking channel below.
	const n = 8
	running := make(chan struct{}, n)
	var maxSeen atomic.Int32
	parallelFor(n, 4, func(int) {
		running <- struct{}{}
		if c := int32(len(running)); c > maxSeen.Load() {
			maxSeen.Store(c)
		}
		<-running
	})
	if maxSeen.Load() < 1 {
		t.Fatal("no execution observed")
	}
}

func TestParallelWeightedChunksCoversAll(t *testing.T) {
	// Skewed cumulative work: vertex 0 owns almost everything.
	cum := []uint32{0, 1000, 1001, 1002, 1003, 1004}
	hits := make([]int32, 5)
	parallelWeightedChunks(cum, 4, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			atomic.AddInt32(&hits[k], 1)
		}
	})
	for k, h := range hits {
		if h != 1 {
			t.Fatalf("vertex %d hit %d times", k, h)
		}
	}
}

func TestParallelWeightedChunksIsolatesHeavyVertex(t *testing.T) {
	// The heavy vertex must land in its own chunk so other workers get
	// the rest.
	cum := []uint32{0, 1000, 1001, 1002, 1003, 1004}
	var chunks [][2]int
	var mu sync.Mutex
	parallelWeightedChunks(cum, 4, func(lo, hi int) {
		mu.Lock()
		chunks = append(chunks, [2]int{lo, hi})
		mu.Unlock()
	})
	if len(chunks) < 2 {
		t.Fatalf("no splitting happened: %v", chunks)
	}
	for _, c := range chunks {
		if c[0] == 0 && c[1] > 1 {
			t.Fatalf("heavy vertex chunk %v not isolated", c)
		}
	}
}

func TestParallelWeightedChunksEdgeCases(t *testing.T) {
	parallelWeightedChunks([]uint32{0}, 4, func(lo, hi int) {
		t.Fatal("empty range invoked fn")
	})
	ran := false
	parallelWeightedChunks([]uint32{5, 5}, 4, func(lo, hi int) {
		if lo != 0 || hi != 1 {
			t.Fatalf("zero-work chunk [%d,%d)", lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("zero-total range skipped entirely")
	}
}
