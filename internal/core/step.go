package core

import (
	"time"

	"husgraph/internal/bitset"
	"husgraph/internal/blockstore"
	"husgraph/internal/ioplan"
	"husgraph/internal/resilience"
	"husgraph/internal/storage"
)

// Step is one iteration of an engine, carved out of Run so a sharding
// coordinator (internal/shard) can drive K owner-scoped engines through the
// same begin → execute → finalize → account sequence the monolithic engine
// runs. The lifecycle is:
//
//	step := e.BeginIter(prog, iter, model, frontier, next)
//	InitAccumulators(prog.Kind(), s, d)        // once per iteration, not per engine
//	err := step.Exec(s, d)                     // accumulate phase (serialized across shards)
//	step.FinalizeOwned(s, d)                   // owner-disjoint apply/activate (skip on error)
//	st, err := step.End()                      // window teardown + attribution
//
// BeginIter..End must run on one goroutine per engine; everything a Step
// touches on its engine (scheduler window, delta tracker, slack pool,
// counters) is confined to that goroutine, and the resulting IterStats is
// published at the barrier by value.
type Step struct {
	e    *Engine
	prog Program
	st   IterStats

	frontier *bitset.Frontier
	next     *bitset.Frontier
	win      *ioplan.Window
	copSkip  func(int) bool

	start         time.Time
	ioBefore      storage.Stats
	specBefore    storage.Stats
	retriesBefore int64
	hedgesBefore  int64
	unusedBefore  int64
	decBefore     blockstore.DecodeStats
	cacheBefore   blockstore.CacheStats

	maxDelta float64
	execErr  error
	ended    bool

	// Events holds the degradation-ladder transitions collected by End,
	// stamped with this iteration (empty without Config.Degrade).
	Events []resilience.DegradeEvent
}

// InitAccumulators prepares the D array for one iteration: monotone
// programs start from the current values (so eager per-row/column
// synchronization sees a complete copy), others accumulate from zero.
// Exposed so a sharding coordinator can initialize the shared arrays
// exactly once before K owner-scoped executors run.
func InitAccumulators(kind Kind, s, d []float64) {
	if kind == Monotone {
		copy(d, s)
		return
	}
	for i := range d {
		d[i] = 0
	}
}

// StartRun prepares the engine for a sequence of steps: semi-external
// residency is pinned (charged once), the overlap-credit slack pool is
// reset, and the degradation breaker's wall-clock ticker starts. Run calls
// it internally; a coordinator driving BeginIter directly must call it
// first and pair it with FinishRun.
func (e *Engine) StartRun() error {
	if e.cfg.SemiExternal {
		if err := e.pinSemResident(); err != nil {
			return err
		}
	}
	e.slackAvail = e.slackAvail[:0]
	e.bucketed, e.bucketPri, e.bucketPending, e.bucketPeek = false, 0, 0, nil
	if e.breaker != nil {
		// The wall-clock ticker ages pressure out even while the engine is
		// stuck inside one long iteration (e.g. every read hedging).
		e.breaker.Start()
	}
	return nil
}

// FinishRun retires speculation parked at the barrier when the run ends and
// stops the breaker. It returns the orphan speculative I/O (device charges
// no iteration's IO accounts for — fold into the last iteration's
// speculative counters as Run does) and any final ladder transitions. Call
// exactly once per StartRun.
func (e *Engine) FinishRun() (orphanIO storage.Stats, events []resilience.DegradeEvent) {
	orphanIO, unused := e.sched.Shutdown()
	e.prefetchUnused.Add(unused)
	if e.breaker != nil {
		e.breaker.Stop()
		events = e.breaker.TakeEvents()
	}
	return orphanIO, events
}

// PredictCosts exposes the §3.4 I/O cost prediction over this engine's
// owned intervals: the modeled cost of running the coming iteration's ROP
// rows (resp. COP columns) that this engine owns. The shard coordinator
// collects these per shard and arbitrates one global model per iteration.
func (e *Engine) PredictCosts(f *bitset.Frontier) (crop, ccop time.Duration) {
	return e.predict(f)
}

// Retries returns the store's cumulative transient-fault retry count (shared
// across forks of the same DualStore lineage); snapshot around runs to
// attribute.
func (e *Engine) Retries() int64 { return e.ds.Retries() }

// Hedges returns the store's cumulative hedged duplicate read count.
func (e *Engine) Hedges() int64 { return e.ds.Hedges() }

// UnusedReadAheadBytes returns the engine's cumulative unused prefetch
// bytes; snapshot around runs to attribute.
func (e *Engine) UnusedReadAheadBytes() int64 { return e.prefetchUnused.Load() }

// BeginIter opens iteration iter over frontier, building the read plan and
// provisional speculation and starting the scheduler window. Activations
// land in next. model selects the update model to execute; pass ModelHybrid
// to let the engine choose (Run's path — the α shortcut and §3.4 predictor
// decide), or a concrete model when an external arbiter (the shard
// coordinator) already chose.
func (e *Engine) BeginIter(prog Program, iter int, model Model, frontier, next *bitset.Frontier) *Step {
	s := &Step{e: e, prog: prog, frontier: frontier, next: next}
	s.ioBefore = e.ds.Device().Stats()
	s.specBefore = e.sched.SpecIO()
	s.retriesBefore = e.ds.Retries()
	s.hedgesBefore = e.ds.Hedges()
	s.unusedBefore = e.prefetchUnused.Load()
	s.decBefore = e.ds.DecodeStats()
	if e.cache != nil {
		s.cacheBefore = e.cache.Stats()
	}
	s.start = time.Now()

	s.st = IterStats{Iter: iter, ActiveVertices: e.ownedActive(frontier), DegradeLevel: e.applyDegradeLevel()}
	s.st.ActiveEdges = e.activeOutEdges(frontier)
	if e.bucketed {
		s.st.Bucketed = true
		s.st.BucketPri = e.bucketPri
		s.st.BucketPending = e.bucketPending
	}
	if model == ModelHybrid {
		s.st.Model = e.chooseModel(frontier, &s.st)
	} else {
		s.st.Model = model
	}
	if e.vd != nil {
		// Safe here: the previous window's gate goroutine is gone
		// (Finish waited for it), so nothing reads the tracker while
		// the completed iteration's deltas rotate into the prev mirror.
		e.vd.rotate()
	}

	var plan []blockstore.BlockKey
	if s.st.Model == ModelROP {
		// With pinned out-indices (semi-external mode) a ROP iteration
		// has nothing to plan: the selective edge-range loads stay on
		// the consume path, and the indices they need are in memory.
		if e.semIdx == nil {
			plan = ioplan.ROPKeysFor(e.ds.Layout, e.ds.BlockEdgeCount, frontier, e.ownedOrNil())
		}
	} else {
		s.copSkip = e.copSkipFunc(frontier)
		plan = ioplan.COPKeysFor(e.ds.Layout, s.copSkip, e.ownedOrNil())
	}
	prov := e.provisionalPlan(prog, s.st.Model, frontier, next)
	if prov != nil && e.breaker != nil {
		// Re-check the ladder at gate time: it may step down while this
		// iteration runs, and speculation launched then would amplify
		// exactly the pressure the breaker is shedding.
		inner, br := prov, e.breaker
		prov = func(depth int) []blockstore.BlockKey {
			lvl := br.Level()
			if lvl >= resilience.LevelNoSpec || (lvl >= resilience.LevelShallowSpec && depth > 1) {
				return nil
			}
			return inner(depth)
		}
	}
	s.win = e.sched.Begin(plan, prov)
	return s
}

// Model returns the update model this step executes (decided at BeginIter).
func (s *Step) Model() Model { return s.st.Model }

// Exec runs the accumulate phase of the iteration over the engine's owned
// intervals: ROP pushes the owned rows (monotone programs eagerly
// synchronize per row, exactly as before the carve), COP streams the owned
// columns including their per-column finalization (the Gauss–Seidel sweep
// is part of the accumulate order, not a barrier phase). The caller must
// have initialized d (InitAccumulators). Exec does not return activations —
// they land in the next frontier handed to BeginIter.
func (s *Step) Exec(sv, d []float64) error {
	var err error
	var md float64
	if s.st.Model == ModelROP {
		err = s.e.ropAccumulate(s.prog, sv, d, s.frontier, s.next, s.win)
	} else {
		md, err = s.e.runCOP(s.prog, sv, d, s.frontier, s.next, s.win, s.copSkip)
	}
	if md > s.maxDelta {
		s.maxDelta = md
	}
	s.execErr = err
	return err
}

// FinalizeOwned runs the end-of-iteration apply/activate/synchronize phase
// over owned intervals: Additive and Incremental ROP iterations apply their
// accumulators here (COP applied per column during Exec); Incremental COP
// iterations consume their deferred deltas. Writes are owner-disjoint
// (vertex values of owned intervals, the engine's own delta tracker, its
// own next-frontier adds), so K shards may finalize concurrently once every
// shard's Exec has completed. Monotone steps are a no-op. Skip after an
// Exec error.
func (s *Step) FinalizeOwned(sv, d []float64) {
	if s.prog.Kind() == Monotone {
		return
	}
	needsApply := s.st.Model == ModelROP || s.prog.Kind() == Incremental
	if !needsApply {
		return
	}
	md := s.e.applyOwned(s.prog, sv, d, s.next)
	if s.st.Model == ModelROP && !s.e.cfg.SemiExternal {
		l := s.e.ds.Layout
		dev := s.e.ds.Device()
		nv := int64(blockstore.VertexValueBytes)
		for _, i := range s.e.owned {
			dev.WriteSeq(int64(l.Size(i)) * nv)
		}
	}
	if md > s.maxDelta {
		s.maxDelta = md
	}
}

// End tears down the scheduler window and computes the iteration's full
// attribution (I/O, speculation adoption, overlap credit, decode EWMA,
// modeled runtime, cache and resilience deltas). It must be called on every
// path — the window's pipelines have to land their device charges — and
// returns the Exec error, if any, alongside the partial stats.
func (s *Step) End() (IterStats, error) {
	if s.ended {
		return s.st, s.execErr
	}
	s.ended = true
	e := s.e
	st := &s.st
	ws := e.sched.Finish(s.win)
	e.prefetchUnused.Add(ws.UnusedBytes)
	if s.execErr != nil {
		return s.st, s.execErr
	}

	st.ComputeTime = time.Since(s.start)
	edgeWork, blockWork := e.iterationWork(st.Model, s.frontier, st.ActiveEdges)
	st.ComputeModeled = ModeledComputeTime(edgeWork, e.ownedVertexWork(), blockWork, e.cfg.Threads)
	decDelta := e.ds.DecodeStats().Sub(s.decBefore)
	st.DecodeTime = decDelta.Time
	st.DecodedBytes = decDelta.DecodedBytes()
	st.CompressedBytes = decDelta.CompressedBytes
	st.DecodeModeled = ModeledDecodeTime(decDelta.VarintBytes, decDelta.RLEBytes, e.cfg.Threads)
	if db := st.DecodedBytes; db > 0 {
		// Feed the predictor's decode-cost EWMA from what this iteration
		// actually decoded (modeled rates, so replays are deterministic).
		rate := float64(st.DecodeModeled) / float64(db)
		if e.decKnown {
			e.decNsPerByte = 0.75*e.decNsPerByte + 0.25*rate
		} else {
			e.decNsPerByte, e.decKnown = rate, true
		}
	}
	// Attribution across the barrier: speculative reads issued during
	// this window belong to the iteration that consumes them, so they
	// are subtracted from this iteration's raw device delta; the batch
	// this iteration consumed is added back.
	rawIO := e.ds.Device().Stats().Sub(s.ioBefore)
	specIssued := e.sched.SpecIO().Sub(s.specBefore)
	st.IO = rawIO.Sub(specIssued).Add(ws.SpecIO)
	st.IOTime = st.IO.SimIO
	st.SpecReadBytes = ws.SpecIO.ReadBytes()
	st.SpecIOTime = ws.SpecIO.SimIO
	st.SpecDepth = ws.SpecDepth
	st.PrefetchStall = ws.Stall
	// Overlap credit: a batch adopted at depth d ran behind the last d
	// iterations' compute, so up to min(its device time, their pooled
	// idle tails) of this iteration's I/O time is already hidden.
	// Claimed slack is consumed oldest-first so chained windows never
	// hide two batches behind the same idle time.
	var credit time.Duration
	if d := ws.SpecDepth; d > 0 && ws.SpecIO.SimIO > 0 {
		if d > len(e.slackAvail) {
			d = len(e.slackAvail)
		}
		pool := e.slackAvail[len(e.slackAvail)-d:]
		var hideable time.Duration
		for _, sl := range pool {
			hideable += sl
		}
		credit = ws.SpecIO.SimIO
		if hideable < credit {
			credit = hideable
		}
		if st.IOTime < credit {
			credit = st.IOTime
		}
		rem := credit
		for k := range pool {
			take := pool[k]
			if take > rem {
				take = rem
			}
			pool[k] -= take
			rem -= take
			if rem == 0 {
				break
			}
		}
	}
	st.OverlapCredit = credit
	// Decode placement mirrors where the decompression actually runs:
	// asynchronous pipelines decode in their prefetch workers, so the
	// work overlaps the device and lands on the CPU side of the
	// max(); synchronous loads decode inline after each read returns,
	// extending the I/O path. This is what makes compression pay most
	// on slow devices — on an HDD the shrunk reads dominate and the
	// decode hides behind them; on RAM-class storage the decode is the
	// bottleneck and compression can only break even.
	ioSide := st.IOTime - credit
	cpuSide := st.ComputeModeled
	if e.cfg.PrefetchDepth > 0 && st.DegradeLevel < resilience.LevelNoPrefetch {
		cpuSide += st.DecodeModeled
	} else {
		ioSide += st.DecodeModeled
	}
	st.Runtime = ioSide
	if cpuSide > st.Runtime {
		st.Runtime = cpuSide
	}
	slack := st.ComputeModeled - st.IOTime
	if slack < 0 {
		slack = 0
	}
	e.slackAvail = append(e.slackAvail, slack)
	st.MaxDelta = s.maxDelta
	st.Retries = e.ds.Retries() - s.retriesBefore
	st.Hedges = e.ds.Hedges() - s.hedgesBefore
	st.PrefetchUnusedBytes = e.prefetchUnused.Load() - s.unusedBefore
	if e.cache != nil {
		delta := e.cache.Stats().Sub(s.cacheBefore)
		st.CacheHits, st.CacheMisses, st.CacheEvictions = delta.Hits, delta.Misses, delta.Evictions
	}
	if e.breaker != nil {
		for _, ev := range e.breaker.TakeEvents() {
			ev.Iter = st.Iter
			s.Events = append(s.Events, ev)
		}
	}
	return s.st, nil
}
