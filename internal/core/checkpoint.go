package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"husgraph/internal/bitset"
	"husgraph/internal/storage"
)

// StatefulProgram is implemented by programs that hold internal
// per-vertex state beyond the engine-managed values (e.g. PageRank-Delta's
// residuals). The engine persists that state inside checkpoints so resumed
// runs continue exactly.
type StatefulProgram interface {
	Program
	// SaveState serializes the program's internal state.
	SaveState() []byte
	// LoadState restores a state produced by SaveState. It is called
	// after Init.
	LoadState(data []byte) error
}

// checkpoint is the engine's resumable state: the next iteration number,
// the current vertex values and frontier, and optional program state.
type checkpoint struct {
	iter      int
	values    []float64
	frontier  *bitset.Frontier
	progState []byte
}

const checkpointMagic = "HUSK"

// encodeCheckpoint serializes a checkpoint.
func encodeCheckpoint(c *checkpoint) []byte {
	n := len(c.values)
	members := c.frontier.Members()
	size := 4 + 8 + 8 + n*8 + 8 + len(members)*4 + 8 + len(c.progState)
	buf := make([]byte, 0, size)
	var scratch [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	buf = append(buf, checkpointMagic...)
	put64(uint64(c.iter))
	put64(uint64(n))
	for _, v := range c.values {
		put64(math.Float64bits(v))
	}
	put64(uint64(len(members)))
	for _, m := range members {
		binary.LittleEndian.PutUint32(scratch[:4], uint32(m))
		buf = append(buf, scratch[:4]...)
	}
	put64(uint64(len(c.progState)))
	buf = append(buf, c.progState...)
	return buf
}

// decodeCheckpoint parses a checkpoint for a graph of n vertices whose run
// is bounded by maxIter iterations. The iteration field is validated
// against that bound: a corrupted counter would otherwise decode to a
// huge (or negative) value and silently skip the entire run on resume.
func decodeCheckpoint(buf []byte, n, maxIter int) (*checkpoint, error) {
	fail := func(msg string) (*checkpoint, error) {
		return nil, fmt.Errorf("core: bad checkpoint: %s", msg)
	}
	if len(buf) < 20 || string(buf[:4]) != checkpointMagic {
		return fail("magic")
	}
	c := &checkpoint{}
	c.iter = int(binary.LittleEndian.Uint64(buf[4:]))
	if c.iter < 0 || c.iter > maxIter {
		return fail(fmt.Sprintf("iteration %d outside [0, %d]", c.iter, maxIter))
	}
	if got := int(binary.LittleEndian.Uint64(buf[12:])); got != n {
		return fail(fmt.Sprintf("vertex count %d, want %d", got, n))
	}
	off := 20
	if len(buf) < off+n*8+8 {
		return fail("truncated values")
	}
	c.values = make([]float64, n)
	for v := 0; v < n; v++ {
		c.values[v] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	members := int(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	if members < 0 || members > n || len(buf) < off+members*4+8 {
		return fail("truncated frontier")
	}
	c.frontier = bitset.NewFrontier(n)
	for k := 0; k < members; k++ {
		m := int(binary.LittleEndian.Uint32(buf[off:]))
		if m >= n {
			return fail(fmt.Sprintf("frontier member %d out of range", m))
		}
		c.frontier.Add(m)
		off += 4
	}
	stateLen := int(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	if stateLen < 0 || len(buf) != off+stateLen {
		return fail("truncated program state")
	}
	if stateLen > 0 {
		c.progState = append([]byte(nil), buf[off:]...)
	}
	return c, nil
}

// Checkpoint blob naming. Checkpoints are written to two alternating
// generation slots, ckpt-<prog>.g0 and ckpt-<prog>.g1, so a crash (or torn
// write) while persisting the newest checkpoint can never destroy the
// previous good one: the next Resume validates the newest generation's
// checksum frame and decode, and falls back to the other generation when
// it is truncated or corrupt. The pre-generation blob name ckpt-<prog> is
// still read (never written) for stores checkpointed by older builds.
func checkpointName(prog Program) string {
	return "ckpt-" + prog.Name()
}

func checkpointGenName(prog Program, slot int) string {
	return fmt.Sprintf("%s.g%d", checkpointName(prog), slot)
}

// writeCheckpoint persists the current run state into the engine's next
// generation slot, then flips the slot so consecutive checkpoints
// alternate between g0 and g1.
func (e *Engine) writeCheckpoint(prog Program, iter int, values []float64, frontier *bitset.Frontier) error {
	c := &checkpoint{iter: iter, values: values, frontier: frontier}
	if sp, ok := prog.(StatefulProgram); ok {
		c.progState = sp.SaveState()
	}
	if err := e.ds.PutAux(checkpointGenName(prog, e.ckptSlot), encodeCheckpoint(c)); err != nil {
		return err
	}
	e.ckptSlot ^= 1
	return nil
}

// loadCheckpoint restores the most advanced decodable checkpoint
// generation, returning (nil, fallbacks, nil) when none exists. Corrupt or
// truncated generations are skipped and counted in fallbacks rather than
// failing the run — that is the entire point of keeping two generations.
// Errors other than not-found/corruption (e.g. a permanent device failure)
// still propagate.
func (e *Engine) loadCheckpoint(prog Program) (*checkpoint, int, error) {
	candidates := []struct {
		name string
		slot int // -1: legacy single-slot blob
	}{
		{checkpointGenName(prog, 0), 0},
		{checkpointGenName(prog, 1), 1},
		{checkpointName(prog), -1},
	}
	var best *checkpoint
	bestSlot := -1
	fallbacks := 0
	for _, cand := range candidates {
		buf, err := e.ds.GetAux(cand.name)
		if errors.Is(err, storage.ErrNotFound) {
			continue
		}
		if errors.Is(err, storage.ErrCorrupt) {
			fallbacks++
			continue
		}
		if err != nil {
			return nil, fallbacks, err
		}
		c, err := decodeCheckpoint(buf, e.ds.Layout.NumVertices, e.cfg.MaxIters)
		if err != nil {
			fallbacks++
			continue
		}
		if best == nil || c.iter > best.iter {
			best, bestSlot = c, cand.slot
		}
	}
	if best == nil {
		// No usable checkpoint: start fresh (recorded in RecoveryStats
		// when generations were skipped as corrupt).
		e.ckptSlot = 0
		return nil, fallbacks, nil
	}
	if best.progState != nil {
		sp, ok := prog.(StatefulProgram)
		if !ok {
			return nil, fallbacks, fmt.Errorf("core: checkpoint holds program state but %s is not stateful", prog.Name())
		}
		if err := sp.LoadState(best.progState); err != nil {
			return nil, fallbacks, fmt.Errorf("core: restore %s state: %w", prog.Name(), err)
		}
	}
	// The next checkpoint must overwrite the *other* slot, preserving the
	// generation we just resumed from until a newer one lands safely.
	if bestSlot >= 0 {
		e.ckptSlot = bestSlot ^ 1
	} else {
		e.ckptSlot = 0
	}
	return best, fallbacks, nil
}

// WriteCheckpoint persists a resumable checkpoint of (iter, values,
// frontier) — the exported surface the shard coordinator uses to
// checkpoint a sharded run through shard 0's engine (checkpoint state is
// global: the shared value array and the merged frontier).
func (e *Engine) WriteCheckpoint(prog Program, iter int, values []float64, frontier *bitset.Frontier) error {
	return e.writeCheckpoint(prog, iter, values, frontier)
}

// LoadCheckpoint restores the most advanced decodable checkpoint
// generation: values is nil when none exists. Corrupt or truncated
// generations are skipped and counted in fallbacks. Exported for the shard
// coordinator's resume path.
func (e *Engine) LoadCheckpoint(prog Program) (iter int, values []float64, frontier *bitset.Frontier, fallbacks int, err error) {
	ck, fallbacks, err := e.loadCheckpoint(prog)
	if err != nil || ck == nil {
		return 0, nil, nil, fallbacks, err
	}
	return ck.iter, ck.values, ck.frontier, fallbacks, nil
}

// DeleteCheckpoint removes a program's persisted checkpoint generations
// (and any legacy single-slot blob), if present.
func (e *Engine) DeleteCheckpoint(prog Program) error {
	var firstErr error
	for _, name := range []string{
		checkpointGenName(prog, 0),
		checkpointGenName(prog, 1),
		checkpointName(prog),
	} {
		err := e.ds.DeleteAux(name)
		if err != nil && !errors.Is(err, storage.ErrNotFound) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SaveStateFloats is a helper for StatefulProgram implementations whose
// state is a float64 slice (residuals, degrees, ...).
func SaveStateFloats(vals []float64) []byte {
	buf := make([]byte, 8+len(vals)*8)
	binary.LittleEndian.PutUint64(buf, uint64(len(vals)))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8+i*8:], math.Float64bits(v))
	}
	return buf
}

// LoadStateFloats parses a SaveStateFloats payload into dst, which must
// have the recorded length.
func LoadStateFloats(data []byte, dst []float64) error {
	if len(data) < 8 {
		return fmt.Errorf("core: state too short")
	}
	n := int(binary.LittleEndian.Uint64(data))
	if n != len(dst) || len(data) != 8+n*8 {
		return fmt.Errorf("core: state holds %d floats for %d slots", n, len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8+i*8:]))
	}
	return nil
}
