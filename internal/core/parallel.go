package core

import "sync"

// parallelFor runs fn(k) for every k in [0, n) on up to t goroutines,
// distributing indices round-robin. It blocks until all calls return.
func parallelFor(n, t int, fn func(k int)) {
	if n <= 0 {
		return
	}
	if t > n {
		t = n
	}
	if t <= 1 {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < t; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w; k < n; k += t {
				fn(k)
			}
		}(w)
	}
	wg.Wait()
}

// parallelChunks splits [0, n) into up to t contiguous chunks and runs
// fn(lo, hi) for each on its own goroutine. It blocks until all return.
func parallelChunks(n, t int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if t > n {
		t = n
	}
	if t <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + t - 1) / t
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parallelWeightedChunks splits the local vertex range [0, n) into up to t
// contiguous chunks of roughly equal *work*, where cum[k]..cum[k+1] bounds
// vertex k's work (e.g. payload byte offsets). Power-law graphs concentrate
// most edges on few vertices, so equal-vertex chunks would leave one worker
// with almost all of a block's edges; equal-work chunks keep the §3.5
// intra-block parallelism effective.
func parallelWeightedChunks(cum []uint32, t int, fn func(lo, hi int)) {
	n := len(cum) - 1
	if n <= 0 {
		return
	}
	total := int64(cum[n]) - int64(cum[0])
	if t > n {
		t = n
	}
	if t <= 1 || total <= 0 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	target := total / int64(t)
	if target < 1 {
		target = 1
	}
	lo := 0
	for lo < n {
		hi := lo + 1
		chunkEnd := int64(cum[lo]) + target
		for hi < n && int64(cum[hi]) < chunkEnd {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}
