package core

import (
	"time"

	"husgraph/internal/bitset"
)

// Compute-time model.
//
// All runtimes in this reproduction are simulated quantities: the device
// model charges I/O, and this file charges computation. Measuring compute
// by wall clock would leak the *host's* properties into the results — a
// single-core CI box would flatten every thread-scaling curve (Fig. 10a)
// and GC pauses would spike otherwise-constant per-iteration lines
// (Fig. 8) — so instead the engine counts the work actually performed and
// prices it for the paper's testbed: a 16-core commodity machine (§4.1).
// The computation itself still runs for real (results are verified against
// oracles); only its clock is modeled. Measured wall time remains
// available in IterStats.ComputeTime.
const (
	// ModeledCores is the simulated testbed's core count.
	ModeledCores = 16
	// edgeCostNanos prices one edge visit (frontier check, message,
	// combine) — calibrated to this codebase's measured single-thread
	// throughput (~5–8 ns/edge on commodity hardware).
	edgeCostNanos = 6
	// vertexCostNanos prices the per-vertex serial work of an iteration
	// (apply/synchronize/activation scans).
	vertexCostNanos = 2
	// blockCostNanos prices the serial setup of touching one block
	// (load dispatch, worker spawn).
	blockCostNanos = 3000
)

// effectiveThreads bounds the configured worker count by the modeled
// machine.
func effectiveThreads(threads int) int {
	if threads > ModeledCores {
		return ModeledCores
	}
	if threads < 1 {
		return 1
	}
	return threads
}

// ModeledComputeTime prices one iteration's computation: parallel edge
// work divided across workers plus serial per-vertex and per-block terms.
func ModeledComputeTime(edgeWork, vertexWork, blocks int64, threads int) time.Duration {
	par := edgeWork * edgeCostNanos / int64(effectiveThreads(threads))
	ser := vertexWork*vertexCostNanos + blocks*blockCostNanos
	return time.Duration(par+ser) * time.Nanosecond
}

// Decode-cost model. Like compute, decode is priced for the modeled
// testbed rather than measured by wall clock, so benchmark artifacts
// replay deterministically on any host. The rates are per *decoded*
// (logical) byte: delta-gap varint pays branchy per-record work, while
// byte-RLE is a near-memcpy expansion.
const (
	// varintDecodeNsPerByte prices delta-gap varint decode per logical
	// byte produced (~650 MB/s single-thread, the measured ballpark for
	// binary.Uvarint chains on commodity hardware).
	varintDecodeNsPerByte = 1.5
	// rleDecodeNsPerByte prices byte-RLE expansion per logical byte
	// produced (run expansion is memset-like, literals are copies).
	rleDecodeNsPerByte = 0.6
)

// ModeledDecodeTime prices the decompression of varintBytes + rleBytes
// logical bytes, divided across the modeled worker count (decode runs in
// the prefetch workers and block-load workers, which parallelize).
func ModeledDecodeTime(varintBytes, rleBytes int64, threads int) time.Duration {
	ns := (float64(varintBytes)*varintDecodeNsPerByte + float64(rleBytes)*rleDecodeNsPerByte) / float64(effectiveThreads(threads))
	return time.Duration(ns) * time.Nanosecond
}

// defaultDecodeNsPerByte seeds the predictor's decode-cost EWMA before
// any decode has been observed: the conservative (varint) per-byte rate
// at the configured parallelism.
func defaultDecodeNsPerByte(threads int) float64 {
	return varintDecodeNsPerByte / float64(effectiveThreads(threads))
}

// iterationWork returns the edge and block work of the coming iteration
// under the chosen model, scoped to the engine's owned intervals: ROP
// touches the active out-edges in the blocks of active owned rows; COP
// scans every in-edge of every block streamed into an owned column.
func (e *Engine) iterationWork(model Model, frontier *bitset.Frontier, activeEdges int64) (edges, blocks int64) {
	l := e.ds.Layout
	if model == ModelROP {
		for _, i := range e.owned {
			lo, hi := l.Bounds(i)
			if frontier.CountIn(lo, hi) == 0 {
				continue
			}
			for j := 0; j < l.P; j++ {
				if e.ds.BlockEdgeCount[i][j] > 0 {
					blocks++
				}
			}
		}
		return activeEdges, blocks
	}
	// Source rows j skipped by COP's block-level selective scheduling
	// contribute to no column; precompute the predicate once per row.
	var skip []bool
	if e.cfg.COPBlockSkip {
		skip = make([]bool, l.P)
		for j := 0; j < l.P; j++ {
			jlo, jhi := l.Bounds(j)
			skip[j] = frontier.CountIn(jlo, jhi) == 0
		}
	}
	for _, i := range e.owned { // column i
		for j := 0; j < l.P; j++ {
			if skip != nil && skip[j] {
				continue
			}
			edges += e.ds.BlockEdgeCount[j][i]
			blocks++
		}
	}
	return edges, blocks
}
