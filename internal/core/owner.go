package core

import "fmt"

// IntervalOwner scopes an engine to a subset of the layout's P intervals.
//
// The dual-block partitioning (P intervals × P×P blocks) is the unit of
// placement: a shard that owns interval i executes ROP row i (pushing out of
// its sources), COP column i (pulling into its destinations), and the
// finalization of vertices in i. The engine's planners, predictors and
// executors all iterate owned intervals only, so K engines with disjoint
// owners over the same store partition an iteration's I/O exactly.
//
// Owners must be static for the life of the engine and list intervals in
// ascending order. The nil owner means "all intervals" — the classic
// single-engine configuration, and the identity case the sharded runtime is
// verified against.
type IntervalOwner interface {
	// NumIntervals returns the layout's total interval count P.
	NumIntervals() int
	// Owns reports whether interval i belongs to this owner.
	Owns(i int) bool
	// Intervals returns the owned intervals in ascending order. Callers
	// must not mutate the returned slice.
	Intervals() []int
}

// IntervalRange owns the contiguous intervals [Lo, Hi) of a layout with P
// intervals — the shape the shard coordinator deals out (shard s of K owns
// [s·P/K, (s+1)·P/K)).
type IntervalRange struct {
	Lo, Hi, P int
	ivs       []int
}

// NewIntervalRange returns the owner of intervals [lo, hi) out of p.
func NewIntervalRange(lo, hi, p int) (*IntervalRange, error) {
	if lo < 0 || hi > p || lo >= hi {
		return nil, fmt.Errorf("core: interval range [%d,%d) invalid for P=%d", lo, hi, p)
	}
	r := &IntervalRange{Lo: lo, Hi: hi, P: p, ivs: make([]int, 0, hi-lo)}
	for i := lo; i < hi; i++ {
		r.ivs = append(r.ivs, i)
	}
	return r, nil
}

// NumIntervals implements IntervalOwner.
func (r *IntervalRange) NumIntervals() int { return r.P }

// Owns implements IntervalOwner.
func (r *IntervalRange) Owns(i int) bool { return i >= r.Lo && i < r.Hi }

// Intervals implements IntervalOwner.
func (r *IntervalRange) Intervals() []int { return r.ivs }

// AllIntervals returns the owner of every interval of a P-interval layout.
func AllIntervals(p int) *IntervalRange {
	r, _ := NewIntervalRange(0, p, p)
	return r
}

// resolveOwner normalizes cfg.Owner for a layout with p intervals: nil
// means all intervals. It validates that the owner agrees with the layout.
func resolveOwner(o IntervalOwner, p int) (owned []int, ownsAll bool, err error) {
	if o == nil {
		o = AllIntervals(p)
	}
	if o.NumIntervals() != p {
		return nil, false, fmt.Errorf("core: owner spans %d intervals, layout has %d", o.NumIntervals(), p)
	}
	ivs := o.Intervals()
	if len(ivs) == 0 {
		return nil, false, fmt.Errorf("core: owner owns no intervals")
	}
	prev := -1
	for _, i := range ivs {
		if i <= prev || i >= p {
			return nil, false, fmt.Errorf("core: owner intervals not ascending in [0,%d): %v", p, ivs)
		}
		prev = i
	}
	return ivs, len(ivs) == p, nil
}
