package core

import (
	"errors"
	"fmt"
)

// ErrSemBudget classifies semi-external-mode sizing failures: the resident
// footprint (vertex arrays + out-indices) exceeds Config.SemBudgetBytes.
// Callers branch with errors.Is(err, ErrSemBudget); the rendered message
// carries the actionable numbers.
var ErrSemBudget = errors.New("core: semi-external resident footprint exceeds budget")

// IterError wraps a failure inside one engine iteration with the context a
// caller needs to diagnose or branch on it structurally: which program,
// which iteration, and which update model was running. Callers classify the
// root cause with errors.Is against the storage sentinels
// (storage.ErrTransient/ErrPermanent/ErrCorrupt) and recover the iteration
// context with errors.As — never by matching the rendered message.
type IterError struct {
	Program string // Program.Name() of the failing run
	Iter    int    // iteration number, 0-based
	Model   Model  // update model active when the failure occurred
	Err     error  // underlying cause, chain preserved
}

func (e *IterError) Error() string {
	return fmt.Sprintf("core: %s iteration %d (%v): %v", e.Program, e.Iter, e.Model, e.Err)
}

func (e *IterError) Unwrap() error { return e.Err }
