package core

import (
	"errors"
	"testing"

	"husgraph/internal/storage"
)

// Cross-iteration pipelining tests: speculation across the barrier may move
// *when* blocks are read, never what the run computes or how the cost is
// attributed.

func TestPipelineBitIdenticalValuesAndModels(t *testing.T) {
	g := prefetchTestGraph()
	for _, model := range []Model{ModelROP, ModelCOP, ModelHybrid} {
		run := func(pipeline int) *Result {
			ds := buildStore(t, g, 4, storage.HDD)
			cfg := Config{Model: model, Threads: 4, PrefetchDepth: 2,
				CacheBudgetBytes: 64 << 20, PipelineIters: pipeline}
			res, err := New(ds, cfg).Run(testBFS{})
			if err != nil {
				t.Fatalf("%v pipeline=%d: %v", model, pipeline, err)
			}
			return res
		}
		ref, piped := run(0), run(1)
		if piped.NumIterations() != ref.NumIterations() {
			t.Fatalf("%v: %d iterations pipelined, %d without", model, piped.NumIterations(), ref.NumIterations())
		}
		for it := range ref.Iterations {
			if piped.Iterations[it].Model != ref.Iterations[it].Model {
				t.Fatalf("%v iter %d: pipelining changed the model choice to %v", model, it, piped.Iterations[it].Model)
			}
		}
		for v := range ref.Values {
			if piped.Values[v] != ref.Values[v] {
				t.Fatalf("%v: pipelining changed value[%d]: %v vs %v", model, v, piped.Values[v], ref.Values[v])
			}
		}
	}
}

func TestPipelineKeepsPerIterationCacheAttribution(t *testing.T) {
	// The speculative pipeline runs quiet and the window replays hits,
	// misses and inserts at consume time — so per-iteration cache counters
	// and the final snapshot must be identical with pipelining on and off,
	// even though the reads themselves moved across the barrier.
	g := prefetchTestGraph()
	run := func(pipeline int) *Result {
		ds := buildStore(t, g, 4, storage.HDD)
		res, err := New(ds, Config{Model: ModelCOP, Threads: 4, MaxIters: 3, PrefetchDepth: 2,
			CacheBudgetBytes: 64 << 20, PipelineIters: pipeline}).Run(testCount{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref, piped := run(0), run(1)
	for it := range ref.Iterations {
		r, p := ref.Iterations[it], piped.Iterations[it]
		if p.CacheHits != r.CacheHits || p.CacheMisses != r.CacheMisses || p.CacheEvictions != r.CacheEvictions {
			t.Fatalf("iter %d: cache deltas moved across the barrier: pipelined %d/%d/%d, reference %d/%d/%d",
				it, p.CacheHits, p.CacheMisses, p.CacheEvictions, r.CacheHits, r.CacheMisses, r.CacheEvictions)
		}
	}
	if piped.Cache != ref.Cache {
		t.Fatalf("final cache snapshots diverged:\n  pipelined %+v\n  reference %+v", piped.Cache, ref.Cache)
	}
}

func TestPipelineKeepsPerIterationIOForStablePlans(t *testing.T) {
	// Forced COP with no cache: every barrier speculates the full column
	// scan and every batch is fully adopted, so per-iteration I/O must stay
	// byte-identical to the unpipelined run — speculative reads are charged
	// to the iteration that consumes them, not the one that issued them.
	g := prefetchTestGraph()
	run := func(pipeline int) *Result {
		ds := buildStore(t, g, 4, storage.HDD)
		res, err := New(ds, Config{Model: ModelCOP, Threads: 4, MaxIters: 4, PrefetchDepth: 2,
			PipelineIters: pipeline}).Run(testCount{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref, piped := run(0), run(1)
	var specBytes int64
	for it := range ref.Iterations {
		r, p := ref.Iterations[it], piped.Iterations[it]
		if p.IO != r.IO {
			t.Fatalf("iter %d: attribution leaked across the barrier:\n  pipelined %+v\n  reference %+v", it, p.IO, r.IO)
		}
		if p.IOTime != r.IOTime {
			t.Fatalf("iter %d: IOTime %v, reference %v", it, p.IOTime, r.IOTime)
		}
		specBytes += p.SpecReadBytes
		if r.SpecReadBytes != 0 {
			t.Fatalf("iter %d: unpipelined run reported speculative reads", it)
		}
		// Fully-adopted batches waste nothing inside the run; only the
		// orphan batch speculated past the MaxIters bound may (it lands in
		// the run total, not in any iteration).
		if p.PrefetchUnusedBytes != 0 {
			t.Fatalf("iter %d: stable plan wasted %d speculative bytes", it, p.PrefetchUnusedBytes)
		}
	}
	// With no cache to absorb them, adopted speculative reads hit the
	// device; the attribution above is only meaningful if some occurred.
	if specBytes == 0 {
		t.Fatal("no speculative reads were adopted across 3 barriers")
	}
}

func TestPipelineConfigDefaults(t *testing.T) {
	if got := (Config{PipelineIters: 1}).withDefaults().PrefetchDepth; got != 2 {
		t.Fatalf("PipelineIters without PrefetchDepth resolved depth %d, want 2", got)
	}
	if got := (Config{}).withDefaults().PrefetchDepth; got != 0 {
		t.Fatalf("plain config grew a prefetch depth: %d", got)
	}
	if got := (Config{PipelineIters: 1, PrefetchDepth: 5}).withDefaults().PrefetchDepth; got != 5 {
		t.Fatalf("explicit depth overridden: %d", got)
	}
}

func TestPipelineSurfacesPermanentFaults(t *testing.T) {
	// A permanent fault must fail the run promptly with pipelining enabled
	// too — speculative pipelines are torn down, never hung (the test
	// completing is the no-hang assertion).
	for _, model := range []Model{ModelCOP, ModelROP} {
		ds, fs := faultyStore(t, 300, 4, 1)
		fs.Inject(storage.Fault{Op: storage.OpRead, Kind: storage.FaultPermanent, After: 2})
		_, err := New(ds, Config{Model: model, Threads: 4, PrefetchDepth: 2, PipelineIters: 1}).Run(testBFS{})
		if err == nil {
			t.Fatalf("%v: injected permanent fault not surfaced", model)
		}
		if !errors.Is(err, storage.ErrPermanent) {
			t.Fatalf("%v: error chain lost the cause: %v", model, err)
		}
	}
}
