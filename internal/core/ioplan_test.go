package core

import (
	"errors"
	"testing"

	"husgraph/internal/bitset"
	"husgraph/internal/graph"
	"husgraph/internal/storage"
)

// Cross-iteration pipelining tests: speculation across the barrier may move
// *when* blocks are read, never what the run computes or how the cost is
// attributed.

func TestPipelineBitIdenticalValuesAndModels(t *testing.T) {
	g := prefetchTestGraph()
	for _, model := range []Model{ModelROP, ModelCOP, ModelHybrid} {
		run := func(pipeline int) *Result {
			ds := buildStore(t, g, 4, storage.HDD)
			cfg := Config{Model: model, Threads: 4, PrefetchDepth: 2,
				CacheBudgetBytes: 64 << 20, PipelineIters: pipeline}
			res, err := New(ds, cfg).Run(testBFS{})
			if err != nil {
				t.Fatalf("%v pipeline=%d: %v", model, pipeline, err)
			}
			return res
		}
		ref := run(0)
		for _, depth := range []int{1, 2} {
			piped := run(depth)
			if piped.NumIterations() != ref.NumIterations() {
				t.Fatalf("%v depth=%d: %d iterations pipelined, %d without", model, depth, piped.NumIterations(), ref.NumIterations())
			}
			for it := range ref.Iterations {
				if piped.Iterations[it].Model != ref.Iterations[it].Model {
					t.Fatalf("%v depth=%d iter %d: pipelining changed the model choice to %v", model, depth, it, piped.Iterations[it].Model)
				}
			}
			for v := range ref.Values {
				if piped.Values[v] != ref.Values[v] {
					t.Fatalf("%v depth=%d: pipelining changed value[%d]: %v vs %v", model, depth, v, piped.Values[v], ref.Values[v])
				}
			}
		}
	}
}

func TestPipelineKeepsPerIterationCacheAttribution(t *testing.T) {
	// The speculative pipeline runs quiet and the window replays hits,
	// misses and inserts at consume time — so per-iteration cache counters
	// and the final snapshot must be identical with pipelining on and off,
	// even though the reads themselves moved across the barrier.
	g := prefetchTestGraph()
	run := func(pipeline int) *Result {
		ds := buildStore(t, g, 4, storage.HDD)
		res, err := New(ds, Config{Model: ModelCOP, Threads: 4, MaxIters: 3, PrefetchDepth: 2,
			CacheBudgetBytes: 64 << 20, PipelineIters: pipeline}).Run(testCount{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(0)
	for _, depth := range []int{1, 2} {
		piped := run(depth)
		for it := range ref.Iterations {
			r, p := ref.Iterations[it], piped.Iterations[it]
			if p.CacheHits != r.CacheHits || p.CacheMisses != r.CacheMisses || p.CacheEvictions != r.CacheEvictions {
				t.Fatalf("depth=%d iter %d: cache deltas moved across the barrier: pipelined %d/%d/%d, reference %d/%d/%d",
					depth, it, p.CacheHits, p.CacheMisses, p.CacheEvictions, r.CacheHits, r.CacheMisses, r.CacheEvictions)
			}
		}
		if piped.Cache != ref.Cache {
			t.Fatalf("depth=%d: final cache snapshots diverged:\n  pipelined %+v\n  reference %+v", depth, piped.Cache, ref.Cache)
		}
	}
}

func TestPipelineKeepsPerIterationIOForStablePlans(t *testing.T) {
	// Forced COP with no cache: every barrier speculates the full column
	// scan and every batch is fully adopted, so per-iteration I/O must stay
	// byte-identical to the unpipelined run — speculative reads are charged
	// to the iteration that consumes them, not the one that issued them.
	g := prefetchTestGraph()
	run := func(pipeline int) *Result {
		ds := buildStore(t, g, 4, storage.HDD)
		res, err := New(ds, Config{Model: ModelCOP, Threads: 4, MaxIters: 4, PrefetchDepth: 2,
			PipelineIters: pipeline}).Run(testCount{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(0)
	for _, depth := range []int{1, 2} {
		piped := run(depth)
		var specBytes int64
		maxSpecDepth := 0
		for it := range ref.Iterations {
			r, p := ref.Iterations[it], piped.Iterations[it]
			if p.IO != r.IO {
				t.Fatalf("depth=%d iter %d: attribution leaked across the barrier:\n  pipelined %+v\n  reference %+v", depth, it, p.IO, r.IO)
			}
			if p.IOTime != r.IOTime {
				t.Fatalf("depth=%d iter %d: IOTime %v, reference %v", depth, it, p.IOTime, r.IOTime)
			}
			specBytes += p.SpecReadBytes
			if p.SpecDepth > maxSpecDepth {
				maxSpecDepth = p.SpecDepth
			}
			if r.SpecReadBytes != 0 || r.SpecDepth != 0 {
				t.Fatalf("iter %d: unpipelined run reported speculative reads", it)
			}
			// Fully-adopted batches waste nothing inside the run; only the
			// orphan batches speculated past the MaxIters bound may (they
			// land in the run total, not in any iteration).
			if p.PrefetchUnusedBytes != 0 {
				t.Fatalf("depth=%d iter %d: stable plan wasted %d speculative bytes", depth, it, p.PrefetchUnusedBytes)
			}
		}
		// With no cache to absorb them, adopted speculative reads hit the
		// device; the attribution above is only meaningful if some occurred.
		if specBytes == 0 {
			t.Fatalf("depth=%d: no speculative reads were adopted across 3 barriers", depth)
		}
		if maxSpecDepth > depth {
			t.Fatalf("depth=%d: adopted a batch from depth %d", depth, maxSpecDepth)
		}
		if depth == 2 && maxSpecDepth < 2 {
			t.Fatalf("depth=2: deepest adopted batch was depth %d — the chain never reached depth 2", maxSpecDepth)
		}
	}
}

func TestPipelineConfigDefaults(t *testing.T) {
	if got := (Config{PipelineIters: 1}).withDefaults().PrefetchDepth; got != 2 {
		t.Fatalf("PipelineIters without PrefetchDepth resolved depth %d, want 2", got)
	}
	if got := (Config{}).withDefaults().PrefetchDepth; got != 0 {
		t.Fatalf("plain config grew a prefetch depth: %d", got)
	}
	if got := (Config{PipelineIters: 1, PrefetchDepth: 5}).withDefaults().PrefetchDepth; got != 5 {
		t.Fatalf("explicit depth overridden: %d", got)
	}
}

func TestPipelineSurfacesPermanentFaults(t *testing.T) {
	// A permanent fault must fail the run promptly with pipelining enabled
	// too — speculative pipelines are torn down, never hung (the test
	// completing is the no-hang assertion).
	for _, model := range []Model{ModelCOP, ModelROP} {
		ds, fs := faultyStore(t, 300, 4, 1)
		fs.Inject(storage.Fault{Op: storage.OpRead, Kind: storage.FaultPermanent, After: 2})
		_, err := New(ds, Config{Model: model, Threads: 4, PrefetchDepth: 2, PipelineIters: 1}).Run(testBFS{})
		if err == nil {
			t.Fatalf("%v: injected permanent fault not surfaced", model)
		}
		if !errors.Is(err, storage.ErrPermanent) {
			t.Fatalf("%v: error chain lost the cause: %v", model, err)
		}
	}
}

func TestPipelineOrphanSpeculationFoldedAtConvergence(t *testing.T) {
	// A run converging exactly at a window boundary leaves speculation
	// parked with no iteration to adopt it. The orphan batches' reads were
	// subtracted from the issuing iterations' IO, so unless they are
	// folded into the last IterStats the Result under-reports the run's
	// speculative reads: Σ SpecReadBytes must equal everything the
	// speculative tap issued, on every run.
	g := prefetchTestGraph()
	for attempt := 0; attempt < 20; attempt++ {
		ds := buildStore(t, g, 4, storage.HDD)
		// A huge tolerance converges the additive run after iteration 0,
		// right when the first window's speculation is parked at the gate.
		e := New(ds, Config{Model: ModelCOP, Threads: 4, PrefetchDepth: 2,
			PipelineIters: 2, Tolerance: 1e18})
		res, err := e.Run(testCount{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || res.NumIterations() != 1 {
			t.Fatalf("fixture: converged=%v after %d iterations, want convergence at the first boundary",
				res.Converged, res.NumIterations())
		}
		issued := e.sched.SpecIO().ReadBytes()
		if got := res.TotalSpecReadBytes(); got != issued {
			t.Fatalf("speculative reads dropped at convergence: Σ SpecReadBytes %d, tap issued %d", got, issued)
		}
		if issued > 0 {
			// Orphan reads are accounted but never consumed: they must not
			// inflate the iteration's IO.
			last := res.Iterations[0]
			if last.SpecIOTime == 0 {
				t.Fatal("orphan SpecIOTime not folded")
			}
			if last.IO.ReadBytes() >= issued+last.IO.WriteBytes() && last.SpecDepth != 0 {
				t.Fatal("orphan batch reported as adopted")
			}
			return
		}
		// The gate lost the race with Finish before launching anything:
		// nothing to fold this attempt. The invariant above still held;
		// retry for a non-vacuous run.
	}
	t.Fatal("speculation never launched in 20 attempts")
}

// testResidual is an additive program with a small, stable residual
// frontier: every vertex receives messages, but only vertices below 20
// reactivate. Pre-value-delta speculation declined every barrier of a
// non-monotone ROP run; the value-delta heuristic predicts the residual
// rows and speculates them.
type testResidual struct{}

func (testResidual) Name() string                                           { return "testResidual" }
func (testResidual) Kind() Kind                                             { return Additive }
func (testResidual) NeedsSymmetric() bool                                   { return false }
func (testResidual) Message(_ graph.VertexID, _ float64, _ float32) float64 { return 1 }
func (testResidual) Combine(acc, msg float64) (float64, bool)               { return acc + msg, true }
func (testResidual) Apply(v graph.VertexID, _, acc float64) (float64, bool) {
	return acc, v < 20
}
func (testResidual) Init(ctx *Context) ([]float64, *bitset.Frontier) {
	return make([]float64, ctx.NumVertices), bitset.FullFrontier(ctx.NumVertices)
}

func TestPipelineValueDeltaSpeculatesAdditiveROP(t *testing.T) {
	// Forced ROP with an additive program: the frontier is rebuilt by
	// finalization after the gate fires, so exact speculation is
	// impossible — the value-delta tracker predicts the rows still moving
	// instead. The prediction must engage (batches adopted, speculative
	// reads attributed) without changing any value or iteration count.
	g := prefetchTestGraph()
	run := func(pipeline int) *Result {
		ds := buildStore(t, g, 4, storage.HDD)
		res, err := New(ds, Config{Model: ModelROP, Threads: 4, MaxIters: 5,
			PrefetchDepth: 2, PipelineIters: pipeline}).Run(testResidual{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref, piped := run(0), run(1)
	if piped.NumIterations() != ref.NumIterations() {
		t.Fatalf("value-delta speculation changed the trajectory: %d iterations vs %d",
			piped.NumIterations(), ref.NumIterations())
	}
	for v := range ref.Values {
		if piped.Values[v] != ref.Values[v] {
			t.Fatalf("value-delta speculation changed value[%d]: %v vs %v", v, piped.Values[v], ref.Values[v])
		}
	}
	adopted := false
	for _, it := range piped.Iterations {
		if it.SpecDepth > 0 && it.SpecReadBytes > 0 {
			adopted = true
		}
		if it.IO != ref.Iterations[it.Iter].IO {
			t.Fatalf("iter %d: value-delta speculation changed attributed IO:\n  pipelined %+v\n  reference %+v",
				it.Iter, it.IO, ref.Iterations[it.Iter].IO)
		}
	}
	if !adopted {
		t.Fatal("value-delta speculation never engaged on the residual-frontier run (pre-fix behavior: additive ROP declines every barrier)")
	}
}
