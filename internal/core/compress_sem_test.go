package core

import (
	"errors"
	"strings"
	"testing"

	"husgraph/internal/blockstore"
	"husgraph/internal/graph"
	"husgraph/internal/storage"
)

// compressTestGraph is a deterministic pseudo-random graph with skewed
// degrees: dense hub rows RLE/varint-compress well, sparse scatter rows
// often stay raw, so mixed builds exercise every codec in one store.
func compressTestGraph() *graph.Graph {
	g := graph.New(600)
	for i := 0; i < 600; i++ {
		g.AddEdge(graph.VertexID(i), graph.VertexID((i*13+7)%600))
		g.AddEdge(graph.VertexID(i), graph.VertexID((i*29+3)%600))
	}
	for i := 200; i < 400; i++ {
		g.AddEdge(0, graph.VertexID(i)) // hub: long sorted run, gap-1 deltas
	}
	return g
}

func buildFormat(t *testing.T, g *graph.Graph, f blockstore.Format, prof storage.Profile) *blockstore.DualStore {
	t.Helper()
	ds, err := blockstore.BuildWithFormat(storage.NewMemStore(storage.NewDevice(prof)), g, 4, f)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestEngineCrossFormatBitIdentical pins the compatibility contract: the
// same program over raw, compressed and mixed builds of one graph produces
// bit-identical values under every update model, for both a monotone and
// an additive program.
func TestEngineCrossFormatBitIdentical(t *testing.T) {
	g := compressTestGraph()
	formats := []blockstore.Format{blockstore.FormatRaw, blockstore.FormatCompressed, blockstore.FormatMixed}
	progs := []struct {
		name string
		prog Program
		max  int
	}{
		{"monotone", testBFS{}, 0},
		{"additive", testCount{}, 2},
	}
	for _, model := range []Model{ModelROP, ModelCOP, ModelHybrid} {
		for _, p := range progs {
			var ref []float64
			for _, f := range formats {
				ds := buildFormat(t, g, f, storage.HDD)
				res, err := New(ds, Config{Model: model, MaxIters: p.max, Threads: 2}).Run(p.prog)
				if err != nil {
					t.Fatalf("%v/%s/%v: %v", model, p.name, f, err)
				}
				if ref == nil {
					ref = res.Values
					continue
				}
				for v := range ref {
					if res.Values[v] != ref[v] {
						t.Fatalf("%v/%s/%v: value[%d] = %v, raw oracle %v", model, p.name, f, v, res.Values[v], ref[v])
					}
				}
			}
		}
	}
}

// TestEngineCrossFormatLogicalBytesIdentical checks the accounting half of
// the compatibility contract: per-iteration logical (decoded-equivalent)
// bytes are identical across formats — compression changes what crosses
// the disk, never what the algorithm logically touched. Forced COP makes
// every load a full block/index load, which is exactly what LogicalBytes
// meters.
func TestEngineCrossFormatLogicalBytesIdentical(t *testing.T) {
	g := compressTestGraph()
	trace := func(f blockstore.Format) []int64 {
		ds := buildFormat(t, g, f, storage.HDD)
		var out []int64
		prev := ds.DecodeStats().LogicalBytes
		cfg := Config{Model: ModelCOP, MaxIters: 3, OnIteration: func(IterStats) {
			cur := ds.DecodeStats().LogicalBytes
			out = append(out, cur-prev)
			prev = cur
		}}
		if _, err := New(ds, cfg).Run(testBFS{}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	raw := trace(blockstore.FormatRaw)
	for _, f := range []blockstore.Format{blockstore.FormatCompressed, blockstore.FormatMixed} {
		got := trace(f)
		if len(got) != len(raw) {
			t.Fatalf("%v: %d iterations, raw has %d", f, len(got), len(raw))
		}
		for i := range raw {
			if got[i] != raw[i] {
				t.Fatalf("%v iter %d: logical bytes %d, raw %d", f, i, got[i], raw[i])
			}
		}
		if raw[0] <= 0 {
			t.Fatal("no logical bytes metered")
		}
	}
}

// TestEngineMixedStoreDecodesAndReadsLess checks a mixed store actually
// moves fewer stored bytes than raw, and that the iteration stats surface
// the decode work (decoded/compressed bytes and a positive modeled decode
// time) while raw runs report none.
func TestEngineMixedStoreDecodesAndReadsLess(t *testing.T) {
	g := compressTestGraph()
	for _, model := range []Model{ModelROP, ModelCOP} {
		raw, err := New(buildFormat(t, g, blockstore.FormatRaw, storage.HDD), Config{Model: model, MaxIters: 2}).Run(testBFS{})
		if err != nil {
			t.Fatal(err)
		}
		mixed, err := New(buildFormat(t, g, blockstore.FormatMixed, storage.HDD), Config{Model: model, MaxIters: 2}).Run(testBFS{})
		if err != nil {
			t.Fatal(err)
		}
		if mixed.TotalIO().ReadBytes() >= raw.TotalIO().ReadBytes() {
			t.Fatalf("%v: mixed read %d not below raw %d", model, mixed.TotalIO().ReadBytes(), raw.TotalIO().ReadBytes())
		}
		if mixed.TotalDecodedBytes() <= 0 || mixed.TotalCompressedBytes() <= 0 {
			t.Fatalf("%v: mixed run metered no decode (%d decoded, %d compressed)", model, mixed.TotalDecodedBytes(), mixed.TotalCompressedBytes())
		}
		if mixed.TotalDecodeModeled() <= 0 {
			t.Fatalf("%v: mixed run has no modeled decode time", model)
		}
		if raw.TotalDecodedBytes() != 0 || raw.TotalDecodeModeled() != 0 {
			t.Fatalf("%v: raw run metered decode work (%d bytes)", model, raw.TotalDecodedBytes())
		}
	}
}

// TestSemiExternalPinsOutIndices pins the -sem contract on the ROP path:
// out-indices load once at pin time, so per-iteration reads shrink and
// values stay bit-identical — on raw and on mixed stores (compression and
// semi-external compose).
func TestSemiExternalPinsOutIndices(t *testing.T) {
	g := compressTestGraph()
	for _, f := range []blockstore.Format{blockstore.FormatRaw, blockstore.FormatMixed} {
		run := func(sem bool) *Result {
			ds := buildFormat(t, g, f, storage.HDD)
			res, err := New(ds, Config{Model: ModelROP, MaxIters: 4, SemiExternal: sem}).Run(testBFS{})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		full, semi := run(false), run(true)
		for v := range full.Values {
			if full.Values[v] != semi.Values[v] {
				t.Fatalf("%v: semi-external changed value[%d]", f, v)
			}
		}
		// Per-iteration reads must shrink: the same ROP iterations without
		// the out-index (or vertex) traffic. Pin-time loads are charged to
		// the device before iteration 0, not to any iteration.
		fullIter, semiIter := full.TotalIO().ReadBytes(), semi.TotalIO().ReadBytes()
		if semiIter >= fullIter {
			t.Fatalf("%v: semi-external per-iteration reads %d not below full %d", f, semiIter, fullIter)
		}
	}
}

// TestSemiExternalBudgetFailFast checks sizing is checked up front with an
// actionable error, and that a budget of exactly the resident footprint is
// accepted.
func TestSemiExternalBudgetFailFast(t *testing.T) {
	g := compressTestGraph()
	ds := buildFormat(t, g, blockstore.FormatMixed, storage.HDD)
	e := New(ds, Config{Model: ModelROP, MaxIters: 1, SemiExternal: true, SemBudgetBytes: 1})
	_, err := e.Run(testBFS{})
	if err == nil {
		t.Fatal("1-byte budget accepted")
	}
	if !errors.Is(err, ErrSemBudget) {
		t.Fatalf("budget error not classified as ErrSemBudget: %v", err)
	}
	//lint:ignore huslint/errclass asserting the rendered message stays actionable; classification above uses ErrSemBudget
	if !strings.Contains(err.Error(), "raise -sem-budget-mb") {
		t.Fatalf("budget error not actionable: %v", err)
	}

	vb, ib := e.SemResidentBytes()
	if vb <= 0 || ib <= 0 {
		t.Fatalf("SemResidentBytes = (%d, %d), want both positive", vb, ib)
	}
	e2 := New(buildFormat(t, g, blockstore.FormatMixed, storage.HDD), Config{Model: ModelROP, MaxIters: 1, SemiExternal: true, SemBudgetBytes: vb + ib})
	if _, err := e2.Run(testBFS{}); err != nil {
		t.Fatalf("exact-footprint budget rejected: %v", err)
	}
}

// TestSemiExternalPinIdempotent checks pinning survives engine reuse (the
// kill-and-resume path re-runs RunContext on a pinned engine).
func TestSemiExternalPinIdempotent(t *testing.T) {
	g := compressTestGraph()
	ds := buildFormat(t, g, blockstore.FormatMixed, storage.HDD)
	e := New(ds, Config{Model: ModelROP, MaxIters: 1, SemiExternal: true})
	if err := e.pinSemResident(); err != nil {
		t.Fatal(err)
	}
	before := ds.DecodeStats()
	if err := e.pinSemResident(); err != nil {
		t.Fatal(err)
	}
	if d := ds.DecodeStats().Sub(before); d.Ops != 0 || d.LogicalBytes != 0 {
		t.Fatalf("second pin re-loaded indices: %+v", d)
	}
	if e.semIdx == nil {
		t.Fatal("pin left no resident indices")
	}
}
