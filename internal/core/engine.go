package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"husgraph/internal/bitset"
	"husgraph/internal/blockstore"
	"husgraph/internal/ioplan"
	"husgraph/internal/resilience"
	"husgraph/internal/storage"
)

// Engine runs vertex programs over a dual-block store with the hybrid
// update strategy.
type Engine struct {
	ds  *blockstore.DualStore
	cfg Config
	ctx *Context

	// owned lists the intervals this engine plans, predicts and executes
	// (ascending); ownsAll short-circuits the scoping for the classic
	// single-engine configuration. Resolved from Config.Owner at New.
	owned   []int
	ownsAll bool

	// scratch pools decode buffers across block loads; spans/runs hold
	// ROP's per-destination-block range buffers (worker j owns index j
	// during a row, so no locking is needed).
	scratch sync.Pool
	spans   [][]span
	runs    [][]run

	// cache is the budgeted hot-block cache shared by ROP and COP
	// pipelines across iterations; nil when Config.CacheBudgetBytes is 0.
	// prefetchUnused accumulates bytes read ahead but never consumed.
	cache          *blockstore.BlockCache
	prefetchUnused atomic.Int64

	// sched owns all block read scheduling, iteration after iteration —
	// including the speculative reads that cross the iteration barrier
	// when Config.PipelineIters is set.
	sched *ioplan.Scheduler
	// slackAvail is the overlap-credit slack pool: one entry per completed
	// iteration holding its still-unclaimed idle compute tail
	// (ComputeModeled − IOTime when positive). A batch adopted at depth d
	// ran behind the last d iterations' compute, so it may hide its I/O in
	// their pooled slack; claimed slack is consumed so overlapping windows
	// never hide two batches behind the same idle time.
	slackAvail []time.Duration
	// vd tracks per-interval value deltas for non-monotone programs so the
	// speculation gate can predict the coming frontier (valuedelta.go);
	// nil when pipelining is off.
	vd *deltaTracker

	// semIdx pins every nonempty block's decoded out-index resident under
	// Config.SemiExternal: read (and charged to the device) exactly once
	// at the first Run, after which ROP iterations plan no KindOutIndex
	// reads at all — only the selectively-loaded edge payload ranges touch
	// the device. nil when semi-external mode is off.
	semIdx [][][]uint32

	// decNsPerByte is the predictor's EWMA of the modeled decompression
	// cost per logical byte, updated from every iteration's observed
	// decode volume; until the first observation (decKnown false) the
	// conservative varint seed rate is used.
	decNsPerByte float64
	decKnown     bool

	// ckptSlot is the next checkpoint generation slot (0 or 1) to write;
	// loadCheckpoint points it away from the generation it resumed from.
	ckptSlot int

	// breaker drives the adaptive degradation ladder when Config.Degrade
	// is set; degradeLevel mirrors its rung at the current iteration's
	// start (written between iterations on the engine goroutine, read by
	// that iteration's workers — never concurrently with the write).
	breaker      *resilience.Breaker
	degradeLevel resilience.Level

	// Bucketed-execution hint, set at the barrier (by Run's own router or
	// the shard coordinator via SetBucketHint) before BeginIter: bucketed
	// marks the coming iteration as bucket-driven, bucketPri/bucketPending
	// describe its bucket, and bucketPeek is the materialized next bucket
	// — the speculative planner's exact provisional plan source (nil when
	// no later bucket exists). bucketPeek is quiescent for the whole
	// iteration (the router runs only between iterations), so the window's
	// gate goroutine may read it freely.
	bucketed      bool
	bucketPri     int64
	bucketPending int
	bucketPeek    *bitset.Frontier
}

// New creates an engine over the given store.
func New(ds *blockstore.DualStore, cfg Config) *Engine {
	e := &Engine{
		ds:  ds,
		cfg: cfg.withDefaults(),
		ctx: &Context{
			NumVertices: ds.Layout.NumVertices,
			OutDegrees:  ds.OutDegrees,
			InDegrees:   ds.InDegrees,
		},
		spans: make([][]span, ds.Layout.P),
		runs:  make([][]run, ds.Layout.P),
	}
	owned, ownsAll, err := resolveOwner(e.cfg.Owner, ds.Layout.P)
	if err != nil {
		// An invalid owner is a programmer error on the sharding layer's
		// side (the CLI validates -shards before any engine exists).
		panic(err)
	}
	e.owned, e.ownsAll = owned, ownsAll
	e.scratch.New = func() any { return new(blockstore.Scratch) }
	if e.cfg.CacheBudgetBytes > 0 {
		// The CLI validates the admission name; an invalid one reaching
		// here silently gets the default, matching ParseAdmission("").
		adm, _ := blockstore.ParseAdmission(e.cfg.CacheAdmission)
		e.cache = blockstore.NewBlockCacheOpts(e.cfg.CacheBudgetBytes, blockstore.CacheOptions{Admission: adm})
	}
	if e.cfg.ReadRetries > 0 {
		ds.SetRetryPolicy(blockstore.RetryPolicy{
			MaxRetries: e.cfg.ReadRetries,
			Backoff:    e.cfg.RetryBackoff,
			MaxBackoff: e.cfg.RetryBackoffMax,
			Jitter:     e.cfg.RetryJitter,
		})
	}
	if e.cfg.ReadDeadline > 0 {
		ds.SetHedgePolicy(blockstore.HedgePolicy{
			Deadline: e.cfg.ReadDeadline,
			NoHedge:  e.cfg.NoHedge,
		})
	}
	var degraded func() bool
	if e.cfg.Degrade {
		e.breaker = resilience.NewBreaker(resilience.Config{
			Window:        e.cfg.DegradeWindow,
			TripRate:      e.cfg.DegradeRate,
			SlowThreshold: e.cfg.ReadDeadline,
			Now:           e.cfg.degradeNow,
		})
		br := e.breaker
		ds.SetReadObserver(func(lat time.Duration, err error) {
			// Missing-blob probes (checkpoint-generation discovery) are
			// answers, not failures — they must not pressure the breaker.
			fault := err != nil && !errors.Is(err, storage.ErrNotFound)
			br.Observe(lat, fault)
		})
		degraded = func() bool { return br.Level() >= resilience.LevelNoSpec }
	}
	// The scheduler forks the store for speculative reads, copying the
	// retry/hedge policies and observer just installed.
	e.sched = ioplan.NewScheduler(ds, e.cache, ioplan.Options{
		Depth:         e.cfg.PrefetchDepth,
		PipelineIters: e.cfg.PipelineIters,
		Degraded:      degraded,
	})
	if e.cfg.PipelineIters > 0 {
		e.vd = newDeltaTracker(ds.Layout.P, e.owned)
	}
	return e
}

// ownedOrNil returns nil for the all-intervals owner — letting planners
// take their unscoped path — and the owned interval list otherwise.
func (e *Engine) ownedOrNil() []int {
	if e.ownsAll {
		return nil
	}
	return e.owned
}

// ownedActive counts the active vertices in owned intervals.
func (e *Engine) ownedActive(f *bitset.Frontier) int {
	if e.ownsAll {
		return f.Count()
	}
	l := e.ds.Layout
	c := 0
	for _, i := range e.owned {
		lo, hi := l.Bounds(i)
		c += f.CountIn(lo, hi)
	}
	return c
}

// ownedVertexWork returns the per-vertex serial work term of one iteration
// for this engine: every vertex of every owned interval (the full vertex
// count for the unscoped engine — finalization sweeps all of them).
func (e *Engine) ownedVertexWork() int64 {
	if e.ownsAll {
		return int64(e.ds.Layout.NumVertices)
	}
	var t int64
	for _, i := range e.owned {
		t += int64(e.ds.Layout.Size(i))
	}
	return t
}

// Context returns the graph context handed to programs.
func (e *Engine) Context() *Context { return e.ctx }

// Device returns the simulated device charged by this engine's store.
func (e *Engine) Device() *storage.Device { return e.ds.Device() }

// Run executes prog to convergence (or the configured iteration bound) and
// returns the final values with per-iteration statistics.
func (e *Engine) Run(prog Program) (*Result, error) {
	return e.RunContext(context.Background(), prog)
}

// RunContext is Run with cancellation: the engine checks ctx between
// iterations and returns ctx.Err() wrapped once it is done. Combine with
// Config.CheckpointEvery to make cancelled long jobs resumable.
func (e *Engine) RunContext(ctx context.Context, prog Program) (*Result, error) {
	n := e.ds.Layout.NumVertices
	values, frontier := prog.Init(e.ctx)
	if len(values) != n {
		return nil, fmt.Errorf("core: program %s returned %d values for %d vertices", prog.Name(), len(values), n)
	}
	if frontier.Len() != n {
		return nil, fmt.Errorf("core: program %s returned frontier over %d vertices, want %d", prog.Name(), frontier.Len(), n)
	}

	s := values               // S: previous-iteration values (paper §3.3)
	d := make([]float64, n)   // D: current-iteration values / accumulators
	res := &Result{Values: s} // s is kept current; assigned again before return
	var router *BucketRouter
	if pp, ok := prog.(PriorityProgram); ok {
		if e.cfg.CheckpointEvery > 0 || e.cfg.Resume {
			return nil, fmt.Errorf("core: priority program %s cannot run with checkpointing or resume: parked bucket state is not derivable from a value checkpoint", prog.Name())
		}
		router = NewBucketRouter(pp, n)
	}
	startRetries := e.ds.Retries()
	startHedges := e.ds.Hedges()
	// Delta-based so a reused engine (kill → resume on the same instance)
	// reports only this run's unused read-ahead, not its predecessors'.
	startUnused := e.prefetchUnused.Load()
	startIter := 0
	if e.cfg.Resume {
		ck, fallbacks, err := e.loadCheckpoint(prog)
		res.Recovery.CheckpointFallbacks = fallbacks
		if err != nil {
			return nil, err
		}
		if ck != nil {
			copy(s, ck.values)
			frontier = ck.frontier
			startIter = ck.iter
			res.Recovery.ResumedIter = ck.iter
		}
	}

	if err := e.StartRun(); err != nil {
		return nil, err
	}
	if router != nil {
		// Seed: the init frontier's members are parked at their initial
		// priorities and the first bucket becomes iteration 0's frontier.
		var hint BucketHint
		frontier, hint = router.Route(frontier, s)
		e.SetBucketHint(hint)
	}
	// Speculation parked at the barrier when the run ends (converged,
	// cancelled, or failed) has no iteration left to adopt it; its device
	// charges land in the device totals but no iteration's IO, and its
	// loaded bytes count as unused read-ahead.
	defer func() {
		_, unused := e.sched.Shutdown()
		e.prefetchUnused.Add(unused)
	}()
	if e.breaker != nil {
		defer e.breaker.Stop()
	}
	for iter := startIter; iter < e.cfg.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			// Best-effort final checkpoint: a cancelled job should resume
			// from the last *completed* iteration, not the last interval
			// boundary. The cancellation error still wins; a failed write
			// just leaves the previous checkpoint in place.
			if e.cfg.CheckpointEvery > 0 && iter > startIter {
				if werr := e.writeCheckpoint(prog, iter, s, frontier); werr == nil {
					res.Recovery.CheckpointsWritten++
				}
			}
			return nil, fmt.Errorf("core: %s cancelled before iteration %d: %w", prog.Name(), iter, err)
		}
		if frontier.Empty() {
			res.Converged = true
			break
		}
		next := bitset.NewFrontier(n)
		step := e.BeginIter(prog, iter, ModelHybrid, frontier, next)
		InitAccumulators(prog.Kind(), s, d)
		if err := step.Exec(s, d); err == nil {
			step.FinalizeOwned(s, d)
		}
		st, err := step.End()
		if err != nil {
			return nil, &IterError{Program: prog.Name(), Iter: iter, Model: st.Model, Err: err}
		}
		res.Recovery.DegradeEvents = append(res.Recovery.DegradeEvents, step.Events...)
		res.Iterations = append(res.Iterations, st)
		if e.cfg.OnIteration != nil {
			e.cfg.OnIteration(st)
		}
		if router != nil {
			var hint BucketHint
			frontier, hint = router.Route(next, s)
			e.SetBucketHint(hint)
		} else {
			frontier = next
		}

		if e.cfg.CheckpointEvery > 0 && (iter+1)%e.cfg.CheckpointEvery == 0 {
			if err := e.writeCheckpoint(prog, iter+1, s, frontier); err != nil {
				return nil, fmt.Errorf("core: checkpoint at iteration %d: %w", iter+1, err)
			}
			res.Recovery.CheckpointsWritten++
		}

		// Tolerance never terminates a bucketed run: a quiescent iteration
		// only means the current bucket settled — parked buckets remain, and
		// convergence is structural (the router runs out of live vertices).
		if router == nil && prog.Kind() != Monotone && e.cfg.Tolerance > 0 && st.MaxDelta < e.cfg.Tolerance {
			res.Converged = true
			break
		}
	}
	if frontier != nil && frontier.Empty() {
		res.Converged = true
	}
	// Retire any speculation the converged run left at the barrier before
	// snapshotting totals (the deferred Shutdown then no-ops). A run that
	// converges exactly at a window boundary leaves batches no iteration
	// adopts; their device charges were subtracted from the issuing
	// iterations' IO, so fold them into the last iteration's speculative
	// counters or the Result totals silently under-report the run's reads.
	orphanIO, orphanUnused := e.sched.Shutdown()
	e.prefetchUnused.Add(orphanUnused)
	if n := len(res.Iterations); n > 0 && orphanIO != (storage.Stats{}) {
		last := &res.Iterations[n-1]
		last.SpecReadBytes += orphanIO.ReadBytes()
		last.SpecIOTime += orphanIO.SimIO
	}
	if e.breaker != nil {
		// Transitions evaluated after the last iteration's drain (e.g. the
		// final re-arm steps) stamp as the last executed iteration.
		lastIter := startIter
		if n := len(res.Iterations); n > 0 {
			lastIter = res.Iterations[n-1].Iter
		}
		for _, ev := range e.breaker.TakeEvents() {
			ev.Iter = lastIter
			res.Recovery.DegradeEvents = append(res.Recovery.DegradeEvents, ev)
		}
	}
	res.Values = s
	res.Recovery.Retries = e.ds.Retries() - startRetries
	res.Recovery.Hedges = e.ds.Hedges() - startHedges
	if e.cache != nil {
		res.Cache = e.cache.Stats()
	}
	res.PrefetchUnusedBytes = e.prefetchUnused.Load() - startUnused
	return res, nil
}

// applyDegradeLevel reads the breaker between iterations, applies the
// current rung to the live scheduler knobs, and records it for this
// iteration's read paths. Without a breaker the run is always at
// LevelNormal.
func (e *Engine) applyDegradeLevel() resilience.Level {
	if e.breaker == nil {
		return resilience.LevelNormal
	}
	e.breaker.Tick()
	lvl := e.breaker.Level()
	depth := e.cfg.PrefetchDepth
	if lvl >= resilience.LevelNoPrefetch {
		depth = 0
	}
	e.sched.SetDepth(depth)
	e.sched.SetBypassCache(lvl >= resilience.LevelBypass)
	e.degradeLevel = lvl
	return lvl
}

// Cache returns the engine's block cache, or nil when caching is disabled.
func (e *Engine) Cache() *blockstore.BlockCache { return e.cache }

// SemResidentBytes sizes semi-external mode's in-memory footprint for
// this engine: the vertex working arrays (S, D, both degree arrays, two
// frontier bitmaps) plus the decoded out-index of every nonempty block in
// an owned row. This is the quantity checked against
// Config.SemBudgetBytes; an engine scoped by an IntervalOwner pins (and
// budgets) only its own rows.
func (e *Engine) SemResidentBytes() (vertexBytes, indexBytes int64) {
	l := e.ds.Layout
	n := int64(l.NumVertices)
	vertexBytes = 2*n*int64(blockstore.VertexValueBytes) + 2*n*4 + 2*(n+7)/8
	for _, i := range e.owned {
		rowIdx := int64(l.Size(i)+1) * blockstore.IndexEntryBytes
		for j := 0; j < l.P; j++ {
			if e.ds.BlockEdgeCount[i][j] != 0 {
				indexBytes += rowIdx
			}
		}
	}
	return vertexBytes, indexBytes
}

// pinSemResident asserts the semi-external residency fits the configured
// budget, then loads every nonempty block's out-index into memory — the
// one-time sequential read semi-external mode charges instead of
// re-reading indices every ROP iteration. Idempotent: a reused engine
// (kill → Resume) keeps its pins.
func (e *Engine) pinSemResident() error {
	if e.semIdx != nil {
		return nil
	}
	vb, ib := e.SemResidentBytes()
	if b := e.cfg.SemBudgetBytes; b > 0 && vb+ib > b {
		return fmt.Errorf(
			"%w: needs %d bytes resident (%d vertex arrays + %d out-indices) but the budget is %d bytes; raise -sem-budget-mb to at least %d MB or drop -sem",
			ErrSemBudget, vb+ib, vb, ib, b, (vb+ib+(1<<20)-1)>>20)
	}
	l := e.ds.Layout
	idx := make([][][]uint32, l.P)
	for i := range idx {
		idx[i] = make([][]uint32, l.P)
	}
	for _, i := range e.owned {
		for j := 0; j < l.P; j++ {
			if e.ds.BlockEdgeCount[i][j] == 0 {
				continue
			}
			one, err := e.ds.LoadOutIndex(i, j)
			if err != nil {
				return fmt.Errorf("core: pinning out-index (%d,%d) for semi-external mode: %w", i, j, err)
			}
			idx[i][j] = one
		}
	}
	e.semIdx = idx
	return nil
}

// copSkipFunc returns COP's block-level selective-scheduling predicate for
// this frontier, or nil when the ablation is off. The same closure builds
// the read plan and drives the executor's skip decisions, so they can
// never diverge.
func (e *Engine) copSkipFunc(frontier *bitset.Frontier) func(int) bool {
	if !e.cfg.COPBlockSkip {
		return nil
	}
	l := e.ds.Layout
	return func(j int) bool {
		jlo, jhi := l.Bounds(j)
		return frontier.CountIn(jlo, jhi) == 0
	}
}

// provisionalPlan returns the provisional read-plan generator for
// cross-barrier speculation — called with depth 1..k for the coming
// iterations — or nil when this barrier cannot be speculated safely:
//
//   - After a dense COP iteration the α shortcut keeps choosing COP, whose
//     plan is frontier-independent — the provisional plan is exact at every
//     depth unless the frontier collapses below the threshold (then it is
//     invalidated).
//   - After a monotone ROP iteration the next frontier only grows, so rows
//     already active when the gate fires are certainly in the final plan;
//     the closure probes the frontier being built with atomic reads. Only
//     depth 1 — the frontier after next does not exist to probe.
//   - Non-monotone programs rebuild their frontier in finalization, after
//     the gate fires; the value-delta heuristic (valuedelta.go) predicts
//     it from the per-interval delta magnitudes instead of declining.
//   - Bucketed (priority) programs carry an exact preview: the next bucket
//     is already materialized at the barrier (bucketPeek), so its rows are
//     certainly in the coming ROP plan — no value-delta guessing even for
//     non-monotone peeling programs. Monotone bucketed programs still OR
//     in the live next-frontier probe (same-bucket reinsertions).
//   - Everything else (forced models contradicting the speculated one, COP
//     block skipping making the plan frontier-dependent) speculates
//     nothing.
func (e *Engine) provisionalPlan(prog Program, model Model, frontier, next *bitset.Frontier) ioplan.ProvisionalFunc {
	if e.cfg.PipelineIters <= 0 {
		return nil
	}
	l := e.ds.Layout
	switch model {
	case ModelCOP:
		if e.cfg.Model == ModelROP || e.cfg.COPBlockSkip {
			return nil
		}
		if e.cfg.Model != ModelCOP && float64(frontier.Count()) <= e.cfg.Alpha*float64(l.NumVertices) {
			if e.bucketed {
				// Bucketed frontiers are sparse by construction, so the
				// next model is a toss-up the value-delta heuristic has no
				// signal for; the ROP path below owns the exact preview.
				return nil
			}
			// Below the α shortcut the next model is prediction-dependent;
			// for non-monotone programs the value deltas still say which
			// way it will go.
			return e.valueDeltaProvisional(prog)
		}
		plan := ioplan.COPKeysFor(l, nil, e.ownedOrNil())
		return func(int) []blockstore.BlockKey { return plan }
	case ModelROP:
		if e.cfg.Model == ModelCOP {
			return nil
		}
		if e.bucketed {
			if e.semIdx != nil {
				return nil // a ROP plan is all out-indices, and they are resident
			}
			peek := e.bucketPeek
			if peek == nil && prog.Kind() != Monotone {
				return nil // nothing materialized and finalization-built frontiers cannot be probed
			}
			probeNext := prog.Kind() == Monotone // eager activations land atomically; safe to probe live
			return func(depth int) []blockstore.BlockKey {
				if depth > 1 {
					return nil // the bucket after next is not materialized
				}
				plan := make([]blockstore.BlockKey, 0, l.P*l.P)
				for _, i := range e.owned {
					lo, hi := l.Bounds(i)
					if (peek == nil || peek.CountIn(lo, hi) == 0) && !(probeNext && next.AnyInAtomic(lo, hi)) {
						continue
					}
					for j := 0; j < l.P; j++ {
						if e.ds.BlockEdgeCount[i][j] != 0 {
							plan = append(plan, blockstore.BlockKey{Kind: blockstore.KindOutIndex, I: i, J: j})
						}
					}
				}
				return plan
			}
		}
		if prog.Kind() != Monotone {
			return e.valueDeltaProvisional(prog)
		}
		if e.semIdx != nil {
			return nil // a ROP plan is all out-indices, and they are resident
		}
		return func(depth int) []blockstore.BlockKey {
			if depth > 1 {
				return nil // no frontier to probe two barriers out
			}
			plan := make([]blockstore.BlockKey, 0, l.P*l.P)
			for _, i := range e.owned {
				lo, hi := l.Bounds(i)
				if !next.AnyInAtomic(lo, hi) {
					continue
				}
				for j := 0; j < l.P; j++ {
					if e.ds.BlockEdgeCount[i][j] != 0 {
						plan = append(plan, blockstore.BlockKey{Kind: blockstore.KindOutIndex, I: i, J: j})
					}
				}
			}
			return plan
		}
	}
	return nil
}

// SetBucketHint installs the barrier-time bucket state for the coming
// iteration (see the bucketed fields on Engine). Run's own router calls it
// between iterations; the shard coordinator calls it on every worker
// engine at the barrier, before the iteration command is sent — the
// command channel's happens-before publishes the fields to the worker.
func (e *Engine) SetBucketHint(h BucketHint) {
	e.bucketed = true
	e.bucketPri = h.Pri
	e.bucketPending = h.Pending
	e.bucketPeek = h.Peek
}

// loadOutRun loads byte range [s, end) of out-block(i,j), serving it from
// the run-granular cache when possible. Device-loaded runs are copied into
// the cache; when a block's cumulative run reads cross the promotion
// density, its whole payload is read once sequentially and cached under
// KindOutBlock, making every later run a memory slice.
func (e *Engine) loadOutRun(i, j int, s, end uint32, sc *blockstore.Scratch) ([]byte, error) {
	if e.cache == nil || e.degradeLevel >= resilience.LevelBypass {
		return e.ds.LoadOutRunScratch(i, j, s, end, sc)
	}
	if data, ok := e.cache.GetRun(i, j, s, end); ok {
		return data, nil
	}
	buf, err := e.ds.LoadOutRunScratch(i, j, s, end, sc)
	if err != nil {
		return nil, err
	}
	if promote := e.cache.PutRun(i, j, s, end, append([]byte(nil), buf...), e.ds.OutBlockBytes[i][j]); promote {
		// Promotion is an optimization read: a failure here just leaves
		// runs being served from the device (the claim is one-shot, so a
		// faulty block is not re-attempted every run).
		if payload, perr := e.ds.LoadOutPayload(i, j); perr == nil {
			e.cache.Put(blockstore.BlockKey{Kind: blockstore.KindOutBlock, I: i, J: j}, &blockstore.CachedBlock{Payload: payload})
		}
	}
	return buf, nil
}

// activeOutEdges sums the out-degrees of the frontier's vertices in owned
// intervals: the paper's "active edges" metric (Fig. 1) and the Σ d_v term
// of C_rop, scoped to what this engine will actually push.
func (e *Engine) activeOutEdges(f *bitset.Frontier) int64 {
	var t int64
	deg := e.ds.OutDegrees
	if e.ownsAll {
		f.Range(func(v int) bool {
			t += int64(deg[v])
			return true
		})
		return t
	}
	l := e.ds.Layout
	for _, i := range e.owned {
		lo, hi := l.Bounds(i)
		f.RangeIn(lo, hi, func(v int) bool {
			t += int64(deg[v])
			return true
		})
	}
	return t
}

// chooseModel implements the I/O-based performance prediction (§3.4) at
// iteration granularity. It fills the prediction fields of st.
func (e *Engine) chooseModel(f *bitset.Frontier, st *IterStats) Model {
	if e.cfg.Model != ModelHybrid {
		return e.cfg.Model
	}
	n := e.ds.Layout.NumVertices
	if float64(f.Count()) > e.cfg.Alpha*float64(n) {
		// α shortcut: dense frontiers choose COP without predicting.
		return ModelCOP
	}
	crop, ccop := e.predict(f)
	st.PredictedROP, st.PredictedCOP = crop, ccop
	if crop <= ccop {
		return ModelROP
	}
	return ModelCOP
}

// predict estimates C_rop and C_cop for the current frontier using the
// device profile's two parameters. It is the paper's §3.4 model with the
// single T_random divisor expanded into the device's per-access latency
// plus transfer bandwidth (the quantity fio would have measured), and with
// the executor's access coalescing mirrored: when a block's active ranges
// sit closer together than the device's coalesce gap, loading it
// degenerates into one scan instead of per-vertex seeks.
func (e *Engine) predict(f *bitset.Frontier) (crop, ccop time.Duration) {
	l := e.ds.Layout
	prof := e.ds.Device().Profile()
	n := int64(l.NumVertices)
	nv := int64(blockstore.VertexValueBytes)
	coalesce := prof.CoalesceBytes()
	deg := e.ds.OutDegrees
	// Decode-cost term (third beside T_random and T_sequential): logical
	// bytes each plan would decompress, priced at the EWMA of observed
	// per-byte decode cost. Zero for stores with no compressed blobs.
	decNs := e.decNsPerByte
	if !e.decKnown {
		decNs = defaultDecodeNsPerByte(e.cfg.Threads)
	}
	step := int64(blockstore.RawRecordBytes(e.ds.Weighted))
	var ropDecBytes, copDecBytes float64

	var seqBytes int64
	for _, i := range e.owned {
		lo, hi := l.Bounds(i)
		k := int64(f.CountIn(lo, hi))
		if k == 0 {
			continue
		}
		// Active out-edge bytes of this row (exact).
		var rowActive int64
		f.RangeIn(lo, hi, func(v int) bool {
			rowActive += int64(deg[v])
			return true
		})
		var rowEdges int64
		for j := 0; j < l.P; j++ {
			rowEdges += e.ds.BlockEdgeCount[i][j]
		}
		for j := 0; j < l.P; j++ {
			cnt := e.ds.BlockEdgeCount[i][j]
			if cnt == 0 {
				continue
			}
			b := e.ds.OutBlockBytes[i][j]
			// Run-granular cache residency: a promoted out-block serves
			// every run from memory; partial run residency discounts the
			// block's cost proportionally (resident runs are re-read
			// free, and resident bytes correlate with re-touched ranges).
			discount := 1.0
			if e.cache != nil {
				if e.cache.Peek(blockstore.BlockKey{Kind: blockstore.KindOutBlock, I: i, J: j}) {
					continue
				}
				if rb := e.cache.RunBytesResident(i, j); rb > 0 {
					frac := float64(rb) / float64(b)
					if frac > 1 {
						frac = 1
					}
					discount = 1 - frac
				}
			}
			// Useful bytes in this block, assuming the row's active
			// edges spread proportionally to block sizes.
			useful := float64(rowActive) * float64(b) / float64(rowEdges)
			if e.ds.OutCodec(i, j) != blockstore.CodecNone {
				// The touched stored ranges decode into the active edges'
				// logical records (run-cached ranges still decode per use,
				// so no residency discount here).
				ropDecBytes += float64(rowActive) * float64(cnt*step) / float64(rowEdges)
			}
			kEff := k
			if kEff > cnt {
				kEff = cnt
			}
			gap := (float64(b) - useful) / float64(kEff)
			if gap <= float64(coalesce) {
				// Dense regime: ranges merge into (nearly) one scan.
				crop += time.Duration(discount * float64(prof.RandTime(b, 1)))
			} else {
				// Sparse regime: one positioning per active vertex.
				crop += time.Duration(discount * float64(prof.RandTime(int64(useful), kEff)))
			}
		}
		// Indices of the row's P out-blocks and the vertex working set
		// (S_i read, all D_j read, D_i written — the paper's
		// (2|V|/P + |V|)·N term). Out-indices resident in the block cache
		// are served from memory and priced at zero; under semi-external
		// mode every index (and the vertex working set) is pinned, so
		// neither term touches the device at all.
		if !e.cfg.SemiExternal {
			rawIdx := int64(l.Size(i)+1) * blockstore.IndexEntryBytes
			for j := 0; j < l.P; j++ {
				if e.cache != nil && e.cache.Peek(blockstore.BlockKey{Kind: blockstore.KindOutIndex, I: i, J: j}) {
					continue
				}
				ib := e.ds.OutIndexBytes(i, j)
				seqBytes += ib
				if ib < rawIdx {
					ropDecBytes += float64(rawIdx) // stored compressed: decodes to the raw entries
				}
			}
			seqBytes += (2*int64(l.Size(i)) + n) * nv
		}
	}
	crop += prof.SeqTime(seqBytes) + time.Duration(ropDecBytes*decNs)

	// COP: stream every column's in-blocks and indices plus the same
	// per-interval vertex working set. In-blocks resident in the block
	// cache skip the device entirely, so they are priced at zero — this is
	// what lets the predictor keep preferring COP once the hot columns
	// have been cached.
	var copBytes int64
	for _, j := range e.owned {
		rawIdx := int64(l.Size(j)+1) * blockstore.IndexEntryBytes
		for i := 0; i < l.P; i++ {
			if e.cache != nil && e.cache.Peek(blockstore.BlockKey{Kind: blockstore.KindInBlock, I: i, J: j}) {
				continue // cached blocks are already decoded, too
			}
			ib := e.ds.InIndexBytes(i, j)
			copBytes += e.ds.InBlockBytes[i][j] + ib
			if e.ds.InCodec(i, j) != blockstore.CodecNone {
				copDecBytes += float64(e.ds.BlockEdgeCount[i][j] * step)
			}
			if ib < rawIdx {
				copDecBytes += float64(rawIdx)
			}
		}
		if !e.cfg.SemiExternal {
			copBytes += (2*int64(l.Size(j)) + n) * nv
		}
	}
	ccop = prof.SeqTime(copBytes) + time.Duration(copDecBytes*decNs)
	return crop, ccop
}
