package core

import (
	"husgraph/internal/bitset"
	"husgraph/internal/bucket"
	"husgraph/internal/graph"
)

// PriorityProgram extends Program with a per-vertex priority, turning the
// engine's iterate-to-fixpoint loop into Julienne-style bucketed execution:
// activated vertices are parked in priority buckets at the iteration
// barrier, and each iteration's frontier is exactly the next bucket in
// priority order (delta-stepping SSSP's distance buckets, coreness
// peeling's degree buckets). Per-bucket termination is structural — a
// bucket drains to fixpoint through same-bucket reinsertion before the
// next bucket opens, and the run converges when no bucket holds a live
// vertex.
//
// Priority and PriorityOrder must be pure; EnterBucket is called by the
// run's coordinator at the iteration barrier (before any worker of the
// iteration starts), so implementations may store the bucket priority in a
// plain field for Apply to read.
//
// Priority programs cannot be checkpointed: parked bucket state is not
// derivable from the value array, so Config.CheckpointEvery and
// Config.Resume are rejected for them.
type PriorityProgram interface {
	Program
	// Priority maps a vertex and its current value to its bucket priority.
	Priority(v graph.VertexID, val float64) int64
	// PriorityOrder declares the drain direction.
	PriorityOrder() bucket.Order
	// EnterBucket is called once per iteration with the priority of the
	// bucket about to be processed (monotone in the declared order across
	// the run).
	EnterBucket(pri int64)
}

// BucketRouter drives a PriorityProgram's frontiers through the bucket
// structure: every activation the iteration produced is parked at its
// priority, and the next iteration's frontier is the popped minimum (resp.
// maximum) bucket. Owned by the run's coordinator goroutine — Run's own
// loop at K=1, the shard coordinator at K>1 — and touched only at the
// barrier, so K-shard runs route the one merged frontier exactly as an
// unsharded run does (bit-identity).
type BucketRouter struct {
	prog PriorityProgram
	b    *bucket.Buckets
}

// NewBucketRouter builds a router over [0, n) for prog.
func NewBucketRouter(prog PriorityProgram, n int) *BucketRouter {
	return &BucketRouter{prog: prog, b: bucket.MakeBuckets(n, prog.PriorityOrder(), 0)}
}

// BucketHint is the barrier-time bucket state handed to the engines before
// an iteration: the priority of the bucket being processed, the number of
// vertices still parked, and a materialized preview of the bucket that
// will be popped next (nil when none) — the exact speculative plan source.
type BucketHint struct {
	Pri     int64
	Pending int
	Peek    *bitset.Frontier
}

// Route parks every member of next at its current priority (from the value
// array — ascending vertex order, so the sequence is deterministic at every
// shard count) and pops the next bucket. It returns the popped frontier
// (an empty frontier when no live vertex remains — the caller's converged
// signal) and the barrier hint, and tells the program which bucket opens.
func (r *BucketRouter) Route(next *bitset.Frontier, s []float64) (*bitset.Frontier, BucketHint) {
	next.Range(func(v int) bool {
		r.b.UpdateBucket(v, r.prog.Priority(graph.VertexID(v), s[v]))
		return true
	})
	f, pri, ok := r.b.NextBucket()
	if !ok {
		return bitset.NewFrontier(r.b.Len()), BucketHint{}
	}
	r.prog.EnterBucket(pri)
	h := BucketHint{Pri: pri, Pending: r.b.Pending()}
	if peek, _, pok := r.b.PeekBucket(); pok {
		h.Peek = peek
	}
	return f, h
}
