package core_test

import (
	"fmt"
	"log"

	"husgraph/internal/algos"
	"husgraph/internal/blockstore"
	"husgraph/internal/core"
	"husgraph/internal/graph"
	"husgraph/internal/storage"
)

// ExampleEngine_Run builds a small graph's dual-block representation on a
// simulated HDD and runs BFS with the hybrid update strategy.
func ExampleEngine_Run() {
	g := graph.New(6)
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 5}} {
		g.AddEdge(e[0], e[1])
	}

	dev := storage.NewDevice(storage.HDD)
	ds, err := blockstore.Build(storage.NewMemStore(dev), g, 2)
	if err != nil {
		log.Fatal(err)
	}
	dev.Reset() // exclude preprocessing from the run's accounting

	engine := core.New(ds, core.Config{Model: core.ModelHybrid, Threads: 1})
	res, err := engine.Run(algos.BFS{Source: 0})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("converged:", res.Converged)
	for v, d := range res.Values {
		fmt.Printf("dist[%d] = %.0f\n", v, d)
	}
	// Output:
	// converged: true
	// dist[0] = 0
	// dist[1] = 1
	// dist[2] = 2
	// dist[3] = 3
	// dist[4] = 1
	// dist[5] = 2
}

// ExampleConfig_forcedModel forces the Column-oriented Pull model and
// inspects which model each iteration executed.
func ExampleConfig() {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	ds, err := blockstore.Build(storage.NewMemStore(storage.NewDevice(storage.RAM)), g, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.New(ds, core.Config{Model: core.ModelCOP, Threads: 1}).Run(algos.BFS{Source: 0})
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range res.Iterations {
		fmt.Printf("iteration %d ran %s with %d active vertices\n", it.Iter+1, it.Model, it.ActiveVertices)
	}
	// Output:
	// iteration 1 ran COP with 1 active vertices
	// iteration 2 ran COP with 1 active vertices
	// iteration 3 ran COP with 1 active vertices
}
