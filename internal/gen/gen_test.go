package gen

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"husgraph/internal/graph"
)

func TestRMATBasics(t *testing.T) {
	g := RMAT(1024, 5000, Graph500, rand.New(rand.NewSource(1)))
	if g.NumVertices != 1024 {
		t.Fatalf("V = %d", g.NumVertices)
	}
	if g.NumEdges() < 4500 || g.NumEdges() > 5000 {
		t.Fatalf("E = %d, want ~5000 after dedup", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			t.Fatal("self loop survived")
		}
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(256, 1000, Graph500, rand.New(rand.NewSource(7)))
	b := RMAT(256, 1000, Graph500, rand.New(rand.NewSource(7)))
	if !reflect.DeepEqual(a.Edges, b.Edges) {
		t.Fatal("same seed produced different graphs")
	}
	c := RMAT(256, 1000, Graph500, rand.New(rand.NewSource(8)))
	if reflect.DeepEqual(a.Edges, c.Edges) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	g := RMAT(4096, 40000, Graph500, rand.New(rand.NewSource(2)))
	degs := g.OutDegrees()
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	mean := float64(g.NumEdges()) / float64(g.NumVertices)
	if float64(degs[0]) < 10*mean {
		t.Fatalf("max degree %d not skewed vs mean %.1f", degs[0], mean)
	}
}

func TestRMATBadProbsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RMAT(16, 10, RMATParams{A: 0.5, B: 0.5, C: 0.5, D: 0.5}, rand.New(rand.NewSource(1)))
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 500, rand.New(rand.NewSource(3)))
	if g.NumEdges() != 500 {
		t.Fatalf("E = %d", g.NumEdges())
	}
	seen := map[[2]graph.VertexID]bool{}
	for _, e := range g.Edges {
		k := [2]graph.VertexID{e.Src, e.Dst}
		if seen[k] {
			t.Fatal("duplicate edge")
		}
		seen[k] = true
	}
}

func TestErdosRenyiTooManyEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ErdosRenyi(3, 100, rand.New(rand.NewSource(1)))
}

func TestChungLuPowerLaw(t *testing.T) {
	g := ChungLu(2000, 20000, 2.2, rand.New(rand.NewSource(4)))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Endpoint popularity decays with ID, so low IDs get most edges.
	deg := g.OutDegrees()
	lowSum, highSum := 0, 0
	for i := 0; i < 100; i++ {
		lowSum += deg[i]
	}
	for i := 1900; i < 2000; i++ {
		highSum += deg[i]
	}
	if lowSum <= 5*highSum {
		t.Fatalf("no power-law skew: low=%d high=%d", lowSum, highSum)
	}
}

func TestWebGraphHighDiameter(t *testing.T) {
	social := RMAT(8192, 80000, Graph500, rand.New(rand.NewSource(5)))
	web := Web(8192, 80000, DefaultWeb, rand.New(rand.NewSource(5)))
	ds := bfsDepth(social, BFSSource(social))
	dw := bfsDepth(web, BFSSource(web))
	if dw <= ds {
		t.Fatalf("web depth %d should exceed social depth %d", dw, ds)
	}
	if dw < 7 {
		t.Fatalf("web core depth %d too small (datasets add tendril tails on top)", dw)
	}
}

// bfsDepth runs an in-memory BFS and returns the deepest level reached.
func bfsDepth(g *graph.Graph, src graph.VertexID) int {
	csr := graph.BuildOutCSR(g)
	depth := make([]int, g.NumVertices)
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []graph.VertexID{src}
	maxd := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range csr.Neighbors(v) {
			if depth[u] < 0 {
				depth[u] = depth[v] + 1
				if depth[u] > maxd {
					maxd = depth[u]
				}
				queue = append(queue, u)
			}
		}
	}
	return maxd
}

func TestStructuredGenerators(t *testing.T) {
	p := Path(5)
	if p.NumEdges() != 4 || p.Edges[0].Src != 0 || p.Edges[3].Dst != 4 {
		t.Fatalf("Path: %v", p.Edges)
	}
	c := Cycle(5)
	if c.NumEdges() != 5 {
		t.Fatalf("Cycle edges = %d", c.NumEdges())
	}
	s := Star(5)
	if s.NumEdges() != 4 || s.OutDegrees()[0] != 4 {
		t.Fatalf("Star: %v", s.Edges)
	}
	g := Grid(3, 4)
	if g.NumVertices != 12 || g.NumEdges() != 3*3+2*4 {
		t.Fatalf("Grid: V=%d E=%d", g.NumVertices, g.NumEdges())
	}
	k := Complete(4)
	if k.NumEdges() != 12 {
		t.Fatalf("Complete edges = %d", k.NumEdges())
	}
	tr := RandomTree(50, rand.New(rand.NewSource(6)))
	if tr.NumEdges() != 49 {
		t.Fatalf("tree edges = %d", tr.NumEdges())
	}
	if got := bfsDepth(tr, 0); got < 1 {
		t.Fatalf("tree not reachable from root, depth %d", got)
	}
	in := tr.InDegrees()
	for v := 1; v < 50; v++ {
		if in[v] != 1 {
			t.Fatalf("tree vertex %d has in-degree %d", v, in[v])
		}
	}
}

func TestAddTendrils(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := RMAT(900, 5000, Graph500, rng)
	g.NumVertices = 1000
	AddTendrils(g, 900, 20, rng)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every tendril vertex has exactly one in-edge and at most one
	// out-edge, forming chains.
	in, out := g.InDegrees(), g.OutDegrees()
	for v := 900; v < 1000; v++ {
		if in[v] != 1 {
			t.Fatalf("tendril vertex %d has in-degree %d", v, in[v])
		}
		if out[v] > 1 {
			t.Fatalf("tendril vertex %d has out-degree %d", v, out[v])
		}
	}
	// Tendrils stay connected to the core: following in-edges from any
	// tendril vertex reaches a core vertex.
	inCSR := graph.BuildInCSR(g)
	for v := graph.VertexID(950); v >= 900; v -= 17 {
		cur := v
		for steps := 0; int(cur) >= 900; steps++ {
			if steps > 1000 {
				t.Fatalf("tendril from %d does not reach core", v)
			}
			cur = inCSR.Neighbors(cur)[0]
		}
	}
}

func TestAddTendrilsPanics(t *testing.T) {
	g := Path(10)
	for name, fn := range map[string]func(){
		"zero core":   func() { AddTendrils(g, 0, 5, rand.New(rand.NewSource(1))) },
		"big core":    func() { AddTendrils(g, 11, 5, rand.New(rand.NewSource(1))) },
		"zero length": func() { AddTendrils(g, 5, 0, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDatasetTendrilTails(t *testing.T) {
	// Dataset graphs must have a long sparse BFS tail: the max depth far
	// exceeds the depth at which most vertices are reached (Fig. 1/8
	// shape).
	if testing.Short() {
		t.Skip("dataset build is slow for -short")
	}
	d, _ := ByName("livejournal-sim")
	g := d.BuildCached()
	depth := bfsDepth(g, BFSSource(g))
	if depth < 7 {
		t.Fatalf("livejournal-sim BFS depth %d; want a tendril tail >= 7", depth)
	}
}

func TestAssignUniformWeights(t *testing.T) {
	g := Path(100)
	AssignUniformWeights(g, 2, 5, rand.New(rand.NewSource(9)))
	for _, e := range g.Edges {
		if e.Weight < 2 || e.Weight >= 5 {
			t.Fatalf("weight %v out of [2,5)", e.Weight)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := Registry()
	if len(r) != 5 {
		t.Fatalf("registry size = %d", len(r))
	}
	wantNames := []string{"livejournal-sim", "twitter-sim", "sk-sim", "uk-sim", "ukunion-sim"}
	if got := Names(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("Names = %v", got)
	}
	// Sizes strictly increase, matching the paper's ordering.
	for i := 1; i < len(r); i++ {
		if r[i].TargetEdges <= r[i-1].TargetEdges {
			t.Fatalf("dataset %s not larger than %s", r[i].Name, r[i-1].Name)
		}
	}
	if !r[0].MemoryFit {
		t.Fatal("livejournal-sim should be the in-memory dataset")
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("twitter-sim")
	if err != nil || d.Kind != "social" {
		t.Fatalf("ByName: %+v, %v", d, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestDatasetBuildDeterministicAndValid(t *testing.T) {
	d, _ := ByName("livejournal-sim")
	g1 := d.Build()
	g2 := d.Build()
	if !reflect.DeepEqual(g1.Edges[:100], g2.Edges[:100]) || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("Build not deterministic")
	}
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices != d.Vertices {
		t.Fatalf("V = %d, want %d", g1.NumVertices, d.Vertices)
	}
	if g1.NumEdges() < d.TargetEdges*9/10 {
		t.Fatalf("E = %d, want >= 90%% of %d", g1.NumEdges(), d.TargetEdges)
	}
	// Weights assigned for SSSP.
	if g1.Edges[0].Weight < 1 || g1.Edges[0].Weight >= 10 {
		t.Fatalf("weight %v", g1.Edges[0].Weight)
	}
}

func TestBuildCachedReturnsSameGraph(t *testing.T) {
	d, _ := ByName("livejournal-sim")
	a := d.BuildCached()
	b := d.BuildCached()
	if a != b {
		t.Fatal("BuildCached did not memoize")
	}
}

func TestBFSSourcePicksHub(t *testing.T) {
	g := Star(10)
	if got := BFSSource(g); got != 0 {
		t.Fatalf("BFSSource = %d, want 0", got)
	}
}

func TestWebDatasetTraversalDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset build is slow for -short")
	}
	d, _ := ByName("uk-sim")
	g := d.BuildCached()
	depth := bfsDepth(g, BFSSource(g))
	if depth < 15 {
		t.Fatalf("uk-sim BFS depth %d; want >= 15 for Fig. 8-style traces", depth)
	}
}
