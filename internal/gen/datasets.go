package gen

import (
	"fmt"
	"math/rand"
	"sync"

	"husgraph/internal/graph"
)

// Dataset describes one synthetic analogue of a paper dataset (Table 2).
// Build is deterministic: the same Dataset always yields the same graph.
type Dataset struct {
	// Name is the registry key, e.g. "twitter-sim".
	Name string
	// Kind is "social" or "web", matching the paper's Table 2 "Type".
	Kind string
	// PaperName, PaperVertices and PaperEdges describe the original
	// dataset being stood in for, for Table 2 reports.
	PaperName     string
	PaperVertices string
	PaperEdges    string
	// Vertices and TargetEdges size the synthetic analogue. The generated
	// edge count may be slightly below TargetEdges after deduplication.
	Vertices    int
	TargetEdges int
	// Seed drives all randomness for this dataset.
	Seed int64
	// MemoryFit mirrors the paper's note that LiveJournal fits in memory
	// while the others exceed it; the harness picks the RAM profile for
	// in-memory datasets in Fig. 10(a).
	MemoryFit bool
}

// registry mirrors the paper's Table 2 at roughly 1:60 vertex scale and
// 1:150–1:2500 edge scale, preserving relative ordering of sizes and the
// social/web split.
var registry = []Dataset{
	{
		Name: "livejournal-sim", Kind: "social",
		PaperName: "LiveJournal", PaperVertices: "4.8 million", PaperEdges: "69 million",
		Vertices: 32768, TargetEdges: 450000, Seed: 10001, MemoryFit: true,
	},
	{
		Name: "twitter-sim", Kind: "social",
		PaperName: "Twitter2010", PaperVertices: "42 million", PaperEdges: "1.5 billion",
		Vertices: 65536, TargetEdges: 1000000, Seed: 10002,
	},
	{
		Name: "sk-sim", Kind: "social",
		PaperName: "SK2005", PaperVertices: "51 million", PaperEdges: "1.9 billion",
		Vertices: 65536, TargetEdges: 1200000, Seed: 10003,
	},
	{
		Name: "uk-sim", Kind: "web",
		PaperName: "UK2007", PaperVertices: "106 million", PaperEdges: "3.7 billion",
		Vertices: 98304, TargetEdges: 1600000, Seed: 10004,
	},
	{
		Name: "ukunion-sim", Kind: "web",
		PaperName: "UKunion", PaperVertices: "133 million", PaperEdges: "5.5 billion",
		Vertices: 131072, TargetEdges: 2200000, Seed: 10005,
	},
}

// Registry returns all datasets in paper order (smallest first).
func Registry() []Dataset {
	out := make([]Dataset, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the dataset with the given registry name.
func ByName(name string) (Dataset, error) {
	for _, d := range registry {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q (have %v)", name, Names())
}

// Names lists the registry keys in order.
func Names() []string {
	names := make([]string, len(registry))
	for i, d := range registry {
		names[i] = d.Name
	}
	return names
}

// Tendril construction parameters: the fraction of vertices living in
// whisker chains and the mean chain length per graph kind (web crawls have
// longer whiskers than social networks; see AddTendrils).
const (
	tendrilFrac      = 0.05
	socialTendrilLen = 4
	webTendrilLen    = 90
)

// Build generates the dataset's graph: the kind-appropriate core topology,
// whisker tendrils over the last ~5% of vertex IDs, and uniform SSSP
// weights in [1, 10).
func (d Dataset) Build() *graph.Graph {
	rng := rand.New(rand.NewSource(d.Seed))
	core := d.Vertices - int(tendrilFrac*float64(d.Vertices))
	var g *graph.Graph
	var tendrilLen int
	switch d.Kind {
	case "social":
		g = RMAT(core, d.TargetEdges, Graph500, rng)
		tendrilLen = socialTendrilLen
	case "web":
		g = Web(core, d.TargetEdges, DefaultWeb, rng)
		tendrilLen = webTendrilLen
	default:
		panic(fmt.Sprintf("gen: dataset %q has unknown kind %q", d.Name, d.Kind))
	}
	g.NumVertices = d.Vertices
	AddTendrils(g, core, tendrilLen, rng)
	AssignUniformWeights(g, 1, 10, rand.New(rand.NewSource(d.Seed+1)))
	return g
}

// BFSSource returns a deterministic high-out-degree source vertex, so
// traversals reach a large fraction of the graph (the paper runs BFS/SSSP
// from a fixed source until convergence).
func BFSSource(g *graph.Graph) graph.VertexID {
	best, bestDeg := graph.VertexID(0), -1
	for v, d := range g.OutDegrees() {
		if d > bestDeg {
			best, bestDeg = graph.VertexID(v), d
		}
	}
	return best
}

// buildCache memoizes dataset construction: experiments reuse datasets many
// times and generation is the dominant setup cost.
var (
	buildCacheMu sync.Mutex
	buildCache   = map[string]*graph.Graph{}
)

// BuildCached returns the dataset graph, memoized process-wide. The caller
// must not mutate the result; use Build for a private copy.
func (d Dataset) BuildCached() *graph.Graph {
	buildCacheMu.Lock()
	defer buildCacheMu.Unlock()
	if g, ok := buildCache[d.Name]; ok {
		return g
	}
	g := d.Build()
	buildCache[d.Name] = g
	return g
}
