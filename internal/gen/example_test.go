package gen_test

import (
	"fmt"
	"math/rand"

	"husgraph/internal/gen"
)

// ExampleRMAT generates a deterministic power-law social graph.
func ExampleRMAT() {
	g := gen.RMAT(1024, 8000, gen.Graph500, rand.New(rand.NewSource(42)))
	fmt.Println("vertices:", g.NumVertices)
	fmt.Println("edges within 1% of target:", g.NumEdges() >= 7920 && g.NumEdges() <= 8000)
	fmt.Println("valid:", g.Validate() == nil)
	// Output:
	// vertices: 1024
	// edges within 1% of target: true
	// valid: true
}

// ExampleByName resolves a Table 2 dataset analogue from the registry.
func ExampleByName() {
	d, err := gen.ByName("ukunion-sim")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s stands in for %s (%s edges), kind %s\n", d.Name, d.PaperName, d.PaperEdges, d.Kind)
	// Output:
	// ukunion-sim stands in for UKunion (5.5 billion edges), kind web
}

// ExampleAnalyze summarizes a graph's structure.
func ExampleAnalyze() {
	s := gen.Analyze(gen.Star(100))
	fmt.Println("max out degree:", s.MaxOutDegree)
	fmt.Println("effective diameter:", s.EffectiveDiameter)
	// Output:
	// max out degree: 99
	// effective diameter: 1
}
