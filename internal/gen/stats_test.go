package gen

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"husgraph/internal/graph"
)

func TestAnalyzeStar(t *testing.T) {
	s := Analyze(Star(10))
	if s.Vertices != 10 || s.Edges != 9 {
		t.Fatalf("V=%d E=%d", s.Vertices, s.Edges)
	}
	if s.MaxOutDegree != 9 || s.MaxInDegree != 1 {
		t.Fatalf("degrees: %+v", s)
	}
	if s.EffectiveDiameter != 1 {
		t.Fatalf("diameter = %d", s.EffectiveDiameter)
	}
	if s.Reachable != 1 {
		t.Fatalf("reachable = %v", s.Reachable)
	}
	// 9 of 10 vertices dangle (no out-edges).
	if math.Abs(s.Dangling-0.9) > 1e-9 {
		t.Fatalf("dangling = %v", s.Dangling)
	}
}

func TestAnalyzePath(t *testing.T) {
	s := Analyze(Path(100))
	// 90th percentile depth from vertex 0 on a path is ~89.
	if s.EffectiveDiameter < 85 || s.EffectiveDiameter > 99 {
		t.Fatalf("diameter = %d", s.EffectiveDiameter)
	}
	if s.MaxOutDegree != 1 {
		t.Fatalf("max out degree = %d", s.MaxOutDegree)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze(graph.New(0))
	if s.Vertices != 0 || s.Edges != 0 {
		t.Fatalf("%+v", s)
	}
	if Analyze(graph.New(5)).Reachable != 1.0/5 {
		t.Fatal("edgeless graph should reach only the source")
	}
}

func TestGiniSkew(t *testing.T) {
	if g := gini([]int{5, 5, 5, 5}); math.Abs(g) > 1e-9 {
		t.Fatalf("uniform gini = %v", g)
	}
	if g := gini([]int{0, 0, 0, 100}); g < 0.7 {
		t.Fatalf("concentrated gini = %v", g)
	}
	if g := gini(nil); g != 0 {
		t.Fatalf("empty gini = %v", g)
	}
	if g := gini([]int{0, 0}); g != 0 {
		t.Fatalf("zero gini = %v", g)
	}
}

func TestAnalyzeSocialVsWebShape(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	social := Analyze(RMAT(4096, 40000, Graph500, rng))
	web := Analyze(Web(4096, 40000, DefaultWeb, rng))
	if social.DegreeGini <= web.DegreeGini {
		t.Fatalf("social gini %.3f should exceed web %.3f", social.DegreeGini, web.DegreeGini)
	}
	if web.EffectiveDiameter <= social.EffectiveDiameter {
		t.Fatalf("web diameter %d should exceed social %d", web.EffectiveDiameter, social.EffectiveDiameter)
	}
}

func TestStatsString(t *testing.T) {
	out := Analyze(Star(5)).String()
	for _, want := range []string{"vertices:", "edges:", "gini", "diameter"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}
