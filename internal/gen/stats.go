package gen

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"husgraph/internal/graph"
)

// Stats summarizes a graph's structural properties — the quantities Table 2
// style dataset inventories report and the generator tests assert on.
type Stats struct {
	Vertices int
	Edges    int
	// MaxOutDegree and MaxInDegree are the hub sizes.
	MaxOutDegree int
	MaxInDegree  int
	// AvgDegree is edges per vertex.
	AvgDegree float64
	// DegreeGini measures out-degree skew in [0, 1): 0 is uniform,
	// power-law graphs approach 1.
	DegreeGini float64
	// EffectiveDiameter estimates the 90th-percentile BFS depth from a
	// high-degree source (directed).
	EffectiveDiameter int
	// Reachable is the fraction of vertices reached from that source.
	Reachable float64
	// Dangling is the fraction of vertices without out-edges.
	Dangling float64
}

// Analyze computes Stats for g. Cost is O(V + E).
func Analyze(g *graph.Graph) Stats {
	s := Stats{Vertices: g.NumVertices, Edges: g.NumEdges()}
	if g.NumVertices == 0 {
		return s
	}
	out := g.OutDegrees()
	in := g.InDegrees()
	dangling := 0
	for v := 0; v < g.NumVertices; v++ {
		if out[v] > s.MaxOutDegree {
			s.MaxOutDegree = out[v]
		}
		if in[v] > s.MaxInDegree {
			s.MaxInDegree = in[v]
		}
		if out[v] == 0 {
			dangling++
		}
	}
	s.AvgDegree = float64(g.NumEdges()) / float64(g.NumVertices)
	s.Dangling = float64(dangling) / float64(g.NumVertices)
	s.DegreeGini = gini(out)

	// Directed BFS from the hub: depth distribution.
	src := BFSSource(g)
	csr := graph.BuildOutCSR(g)
	depth := make([]int, g.NumVertices)
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []graph.VertexID{src}
	var depths []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		depths = append(depths, depth[v])
		for _, u := range csr.Neighbors(v) {
			if depth[u] < 0 {
				depth[u] = depth[v] + 1
				queue = append(queue, u)
			}
		}
	}
	s.Reachable = float64(len(depths)) / float64(g.NumVertices)
	sort.Ints(depths)
	if len(depths) > 0 {
		s.EffectiveDiameter = depths[int(math.Ceil(0.9*float64(len(depths))))-1]
	}
	return s
}

// gini computes the Gini coefficient of a non-negative distribution.
func gini(values []int) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	var cum, weighted float64
	for i, v := range sorted {
		cum += float64(v)
		weighted += float64(v) * float64(i+1)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted)/(float64(n)*cum) - float64(n+1)/float64(n)
}

// String renders the stats as a compact multi-line report.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "vertices:            %d\n", s.Vertices)
	fmt.Fprintf(&sb, "edges:               %d (avg degree %.1f)\n", s.Edges, s.AvgDegree)
	fmt.Fprintf(&sb, "max degree:          %d out / %d in\n", s.MaxOutDegree, s.MaxInDegree)
	fmt.Fprintf(&sb, "out-degree gini:     %.3f\n", s.DegreeGini)
	fmt.Fprintf(&sb, "effective diameter:  %d (90th pct from hub)\n", s.EffectiveDiameter)
	fmt.Fprintf(&sb, "reachable from hub:  %.1f%%\n", 100*s.Reachable)
	fmt.Fprintf(&sb, "dangling vertices:   %.1f%%", 100*s.Dangling)
	return sb.String()
}
