// Package gen produces deterministic synthetic graphs.
//
// The paper evaluates on five real-world graphs (Table 2): three social
// graphs (LiveJournal, Twitter2010, SK2005) and two web graphs (UK2007,
// UKunion) with power-law degree distributions, web graphs having larger
// diameters. Those crawls are not redistributable, so this package builds
// scaled-down synthetic analogues with the properties the experiments
// depend on: R-MAT graphs reproduce the social graphs' heavy skew and small
// diameter, and a locality-biased power-law generator reproduces the web
// graphs' larger diameter (so BFS/WCC run for many iterations, as in
// Fig. 8). All generators are seeded and fully deterministic.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"husgraph/internal/graph"
)

// RMATParams configures the recursive-matrix generator.
type RMATParams struct {
	// A, B, C, D are the quadrant probabilities; they must sum to 1.
	// Graph500 uses 0.57/0.19/0.19/0.05.
	A, B, C, D float64
	// Noise perturbs the probabilities per recursion level to avoid the
	// grid artifacts of pure R-MAT.
	Noise float64
}

// Graph500 is the standard R-MAT parameterization for social-style graphs.
var Graph500 = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05, Noise: 0.05}

// RMAT generates a directed R-MAT graph with numVertices vertices (rounded
// up internally to a power of two, endpoints outside the range rejected)
// and numEdges edges. Self-loops and duplicates are removed, so the result
// may have slightly fewer edges than requested.
func RMAT(numVertices, numEdges int, p RMATParams, rng *rand.Rand) *graph.Graph {
	if numVertices <= 0 {
		panic("gen: RMAT needs at least one vertex")
	}
	if s := p.A + p.B + p.C + p.D; math.Abs(s-1) > 1e-9 {
		panic(fmt.Sprintf("gen: RMAT probabilities sum to %v, want 1", s))
	}
	levels := 0
	for (1 << levels) < numVertices {
		levels++
	}
	g := graph.New(numVertices)
	g.Edges = make([]graph.Edge, 0, numEdges)
	// Duplicates are common in skewed R-MAT output; generate, dedup and
	// top up until the target count is met or generation stops making
	// progress (possible only for tiny, nearly-complete graphs).
	prevDistinct := -1
	for {
		for len(g.Edges) < numEdges {
			src, dst := 0, 0
			for l := 0; l < levels; l++ {
				a, b, c := p.A, p.B, p.C
				if p.Noise > 0 {
					a += (rng.Float64()*2 - 1) * p.Noise * a
					b += (rng.Float64()*2 - 1) * p.Noise * b
					c += (rng.Float64()*2 - 1) * p.Noise * c
				}
				r := rng.Float64() * (a + b + c + p.D)
				switch {
				case r < a:
					// top-left: no bits set
				case r < a+b:
					dst |= 1 << l
				case r < a+b+c:
					src |= 1 << l
				default:
					src |= 1 << l
					dst |= 1 << l
				}
			}
			if src >= numVertices || dst >= numVertices || src == dst {
				continue
			}
			g.AddEdge(graph.VertexID(src), graph.VertexID(dst))
		}
		g.Dedup()
		if len(g.Edges) >= numEdges || len(g.Edges) <= prevDistinct {
			return g
		}
		prevDistinct = len(g.Edges)
	}
}

// ErdosRenyi generates a directed G(n, m) graph: m distinct non-loop edges
// chosen uniformly at random.
func ErdosRenyi(n, m int, rng *rand.Rand) *graph.Graph {
	if n <= 1 && m > 0 {
		panic("gen: ErdosRenyi needs n > 1 for edges")
	}
	maxEdges := int64(n) * int64(n-1)
	if int64(m) > maxEdges {
		panic(fmt.Sprintf("gen: ErdosRenyi m=%d exceeds n(n-1)=%d", m, maxEdges))
	}
	g := graph.New(n)
	seen := make(map[[2]graph.VertexID]bool, m)
	for len(g.Edges) < m {
		s, d := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if s == d || seen[[2]graph.VertexID{s, d}] {
			continue
		}
		seen[[2]graph.VertexID{s, d}] = true
		g.AddEdge(s, d)
	}
	g.SortBySrc()
	return g
}

// ChungLu generates a directed power-law graph with exponent alpha
// (typically 2..3): endpoint i is chosen with probability proportional to
// (i+1)^(-1/(alpha-1)), the standard Chung–Lu expected-degree model.
func ChungLu(n, m int, alpha float64, rng *rand.Rand) *graph.Graph {
	if alpha <= 1 {
		panic("gen: ChungLu needs alpha > 1")
	}
	w := make([]float64, n)
	cum := make([]float64, n+1)
	for i := 0; i < n; i++ {
		w[i] = math.Pow(float64(i+1), -1/(alpha-1))
		cum[i+1] = cum[i] + w[i]
	}
	total := cum[n]
	pick := func() graph.VertexID {
		r := rng.Float64() * total
		// First index with cum[idx+1] > r.
		idx := sort.SearchFloat64s(cum[1:], r)
		if idx >= n {
			idx = n - 1
		}
		return graph.VertexID(idx)
	}
	g := graph.New(n)
	g.Edges = make([]graph.Edge, 0, m)
	for len(g.Edges) < m {
		s, d := pick(), pick()
		if s == d {
			continue
		}
		g.AddEdge(s, d)
	}
	g.Dedup()
	return g
}

// WebParams configures the web-graph generator.
type WebParams struct {
	// Alpha is the power-law exponent for out-degrees.
	Alpha float64
	// JumpFrac bounds link locality: a link from v targets a vertex within
	// ±JumpFrac·n of v on the ID ring (IDs follow crawl order, so nearby
	// IDs are same-site pages). Because the jump is bounded, a BFS
	// frontier advances at most JumpFrac·n IDs per level in each
	// direction, giving an effective depth of about 1/(2·JumpFrac)
	// regardless of scale — the web graphs' large-diameter behaviour the
	// paper's Fig. 8 depends on.
	JumpFrac float64
}

// DefaultWeb produces a web-like analogue whose core converges in roughly
// a dozen BFS levels; dataset construction appends tendrils (below) for
// the long sparse tail real crawls exhibit (cf. the 30-iteration traces of
// Fig. 8 on UKunion).
var DefaultWeb = WebParams{Alpha: 2.2, JumpFrac: 0.07}

// Web generates a directed web-style graph: power-law out-degrees and
// locality-bounded destinations, yielding a much larger diameter than R-MAT.
func Web(n, m int, p WebParams, rng *rand.Rand) *graph.Graph {
	if p.JumpFrac <= 0 || p.JumpFrac > 1 {
		panic("gen: Web needs JumpFrac in (0, 1]")
	}
	maxJump := int(p.JumpFrac * float64(n))
	if maxJump < 1 {
		maxJump = 1
	}
	g := graph.New(n)
	g.Edges = make([]graph.Edge, 0, m)
	// Power-law out-degree per source via Zipf.
	zipf := rand.NewZipf(rng, p.Alpha, 1, uint64(64))
	for len(g.Edges) < m {
		src := rng.Intn(n)
		deg := int(zipf.Uint64()) + 1
		for k := 0; k < deg && len(g.Edges) < m; k++ {
			off := 1 + rng.Intn(maxJump)
			if rng.Intn(2) == 0 {
				off = -off
			}
			dst := src + off
			if dst < 0 {
				dst += n
			}
			if dst >= n {
				dst -= n
			}
			if dst == src {
				continue
			}
			g.AddEdge(graph.VertexID(src), graph.VertexID(dst))
		}
	}
	g.Dedup()
	return g
}

// Path returns the directed path 0→1→…→n-1.
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	return g
}

// Cycle returns the directed cycle over n vertices.
func Cycle(n int) *graph.Graph {
	g := Path(n)
	if n > 1 {
		g.AddEdge(graph.VertexID(n-1), 0)
	}
	return g
}

// Star returns the star with center 0 and out-edges to all others.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, graph.VertexID(i))
	}
	return g
}

// Grid returns a rows×cols grid with edges right and down; vertex (r,c) has
// ID r*cols+c.
func Grid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Complete returns the complete directed graph K_n (no self-loops).
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.AddEdge(graph.VertexID(i), graph.VertexID(j))
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random arborescence rooted at 0: each
// vertex i > 0 gets one in-edge from a random earlier vertex.
func RandomTree(n int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.VertexID(rng.Intn(i)), graph.VertexID(i))
	}
	return g
}

// AddTendrils appends whisker chains to a graph: the vertices in
// [coreVertices, g.NumVertices) are linked into directed chains whose heads
// hang off random core vertices. Real social and web graphs have such
// weakly-attached tendrils; they are what keeps a small frontier alive for
// many iterations after the dense core has converged — the long sparse
// tails of the paper's Fig. 1 and Fig. 8 that make the hybrid ROP switch
// profitable. meanLen is the average chain length (actual lengths vary
// ±50%).
func AddTendrils(g *graph.Graph, coreVertices, meanLen int, rng *rand.Rand) {
	if coreVertices <= 0 || coreVertices > g.NumVertices {
		panic("gen: AddTendrils needs 0 < coreVertices <= |V|")
	}
	if meanLen < 1 {
		panic("gen: AddTendrils needs meanLen >= 1")
	}
	v := coreVertices
	for v < g.NumVertices {
		length := meanLen/2 + rng.Intn(meanLen+1)
		if length < 1 {
			length = 1
		}
		if rem := g.NumVertices - v; length > rem {
			length = rem
		}
		head := graph.VertexID(rng.Intn(coreVertices))
		prev := head
		for k := 0; k < length; k++ {
			g.AddEdge(prev, graph.VertexID(v))
			prev = graph.VertexID(v)
			v++
		}
	}
}

// AssignUniformWeights sets each edge weight uniformly in [lo, hi).
func AssignUniformWeights(g *graph.Graph, lo, hi float32, rng *rand.Rand) {
	if hi < lo {
		panic("gen: AssignUniformWeights hi < lo")
	}
	for i := range g.Edges {
		g.Edges[i].Weight = lo + rng.Float32()*(hi-lo)
	}
}
