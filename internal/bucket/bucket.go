// Package bucket implements a Julienne-style bucketed frontier: an array
// of priority buckets layered over bitset.Frontier, drained strictly in
// priority order (increasing or decreasing). Programs that declare a
// per-vertex priority (delta-stepping SSSP's distance bucket, coreness
// peeling's degree bucket) are driven bucket-by-bucket by the engine
// instead of iterate-to-fixpoint over one flat frontier.
//
// The structure keeps a sliding window of numBuckets frontiers starting at
// the priority of the bucket being drained; vertices whose priority falls
// beyond the window land in a single overflow bucket that is redistributed
// when the window is exhausted. Deletion is lazy: bitset.Frontier has no
// Remove, so a vertex may sit in several bucket frontiers after repeated
// priority updates — the per-vertex priority array is authoritative, and a
// membership bit is honored only if the vertex's current priority still
// maps to that bucket when the bucket is popped.
package bucket

import (
	"math"

	"husgraph/internal/bitset"
)

// Order is the direction buckets are drained in.
type Order int

const (
	// Increasing drains the smallest priority first (SSSP distances).
	Increasing Order = iota
	// Decreasing drains the largest priority first.
	Decreasing
)

// noPri marks a vertex that is in no bucket.
const noPri = math.MinInt64

// DefaultNumBuckets is the window width used when MakeBuckets is given a
// non-positive bucket count — wide enough that delta-stepping on the sim
// graphs almost never touches the overflow path, small enough to scan.
const DefaultNumBuckets = 64

// Buckets is a bucketed frontier over vertex IDs [0, n). Not safe for
// concurrent use: the engine (or the shard coordinator) owns it and calls
// it only between iterations, at the barrier.
type Buckets struct {
	n     int
	nb    int
	order Order

	// pri[v] is the authoritative current priority of v, or noPri when v
	// is parked in no bucket. Bucket membership bits are hints validated
	// against pri at pop time (lazy deletion).
	pri []int64

	// window[i] holds vertices whose key (order-normalized priority) is
	// base+i; slots are allocated lazily and dropped once drained.
	window []*bitset.Frontier
	// overflow holds vertices whose key falls outside the window.
	overflow *bitset.Frontier

	base int64 // key of window[0]
	cur  int   // window slot of the bucket most recently popped
	// opened flips on the first NextBucket: until then every insert goes
	// to overflow so the first refill can anchor the window at the true
	// minimum key instead of at whatever vertex arrived first.
	opened bool

	live int // number of vertices with pri != noPri
}

// MakeBuckets returns an empty bucket structure over [0, n) drained in the
// given order with a window of numBuckets buckets (DefaultNumBuckets when
// numBuckets <= 0).
func MakeBuckets(n int, order Order, numBuckets int) *Buckets {
	if numBuckets <= 0 {
		numBuckets = DefaultNumBuckets
	}
	return &Buckets{
		n:        n,
		nb:       numBuckets,
		order:    order,
		pri:      newPri(n),
		window:   make([]*bitset.Frontier, numBuckets),
		overflow: bitset.NewFrontier(n),
	}
}

func newPri(n int) []int64 {
	p := make([]int64, n)
	for i := range p {
		p[i] = noPri
	}
	return p
}

// key normalizes a priority so the window is always drained in ascending
// key order regardless of the declared Order.
func (b *Buckets) key(p int64) int64 {
	if b.order == Decreasing {
		return -p
	}
	return p
}

// Len returns the universe size.
func (b *Buckets) Len() int { return b.n }

// Pending returns the number of vertices currently parked in some bucket —
// work the structure still holds beyond the frontier last popped.
func (b *Buckets) Pending() int { return b.live }

// UpdateBucket sets v's priority to p, moving it to the matching bucket.
// Updates that map before the bucket currently being drained are clamped
// into the current bucket: priority programs guarantee monotone progress
// (delta-stepping's non-negative weights, peeling's max(deg−removed, k)
// floor), so a clamped entry is semantically "process now", never "process
// in the past".
func (b *Buckets) UpdateBucket(v int, p int64) {
	b.ensure(v)
	if b.pri[v] == noPri {
		b.live++
	}
	b.pri[v] = p
	if !b.opened {
		b.overflow.Add(v)
		return
	}
	off := b.offset(b.key(p))
	if off >= b.nb {
		b.overflow.Add(v)
		return
	}
	if b.window[off] == nil {
		b.window[off] = bitset.NewFrontier(b.n)
	}
	b.window[off].Add(v)
}

// Remove takes v out of whatever bucket it is parked in (lazily — the
// membership bits stay, but pop-time validation will skip it).
func (b *Buckets) Remove(v int) {
	if v < 0 || v >= b.n || b.pri[v] == noPri {
		return
	}
	b.pri[v] = noPri
	b.live--
}

// Priority returns v's current priority and whether v is parked in a
// bucket.
func (b *Buckets) Priority(v int) (int64, bool) {
	if v < 0 || v >= b.n || b.pri[v] == noPri {
		return 0, false
	}
	return b.pri[v], true
}

// offset maps a key to its window slot relative to base, clamping keys at
// or before the current bucket into the current bucket (see UpdateBucket).
func (b *Buckets) offset(k int64) int {
	off64 := k - b.base
	if off64 >= int64(b.nb) {
		return b.nb // caller treats >= nb as overflow
	}
	off := int(off64)
	if off < b.cur {
		off = b.cur
	}
	return off
}

// NextBucket pops the non-empty bucket with the smallest key: it returns a
// freshly built frontier of that bucket's live members (ascending vertex
// order — deterministic), the bucket's priority, and true. The returned
// members are drained from the structure (pri reset to noPri); reinserting
// a popped vertex requires a new UpdateBucket call. Returns (nil, 0, false)
// when no live vertex remains.
func (b *Buckets) NextBucket() (*bitset.Frontier, int64, bool) {
	for {
		if b.opened {
			for s := b.cur; s < b.nb; s++ {
				f := b.window[s]
				b.window[s] = nil
				if f == nil || f.Empty() {
					continue
				}
				b.cur = s
				want := b.base + int64(s)
				out := b.collect(f, want)
				if out != nil {
					return out, b.fromKey(want), true
				}
			}
		}
		if !b.refill() {
			return nil, 0, false
		}
	}
}

// collect builds the clean frontier of f's live members whose current key
// still maps to slot key want, draining each collected vertex. Returns nil
// if every member was stale.
func (b *Buckets) collect(f *bitset.Frontier, want int64) *bitset.Frontier {
	var out *bitset.Frontier
	f.Range(func(v int) bool {
		p := b.pri[v]
		if p == noPri {
			return true // lazily deleted
		}
		k := b.key(p)
		if koff := k - b.base; koff < int64(b.cur) {
			k = b.base + int64(b.cur) // clamped into the current bucket
		}
		if k != want {
			return true // moved to a later bucket; its live bit is there
		}
		if out == nil {
			out = bitset.NewFrontier(b.n)
		}
		out.Add(v)
		b.pri[v] = noPri
		b.live--
		return true
	})
	return out
}

// refill slides the window: every live vertex still parked anywhere
// (overflow or a stale window bit already cleared — only overflow can hold
// live vertices here) is redistributed into a fresh window anchored at the
// minimum live key. Returns false when nothing live remains.
func (b *Buckets) refill() bool {
	if b.live == 0 {
		return false
	}
	minK := int64(math.MaxInt64)
	var members []int
	b.overflow.Range(func(v int) bool {
		p := b.pri[v]
		if p == noPri {
			return true
		}
		members = append(members, v)
		if k := b.key(p); k < minK {
			minK = k
		}
		return true
	})
	if len(members) == 0 {
		// live > 0 but nothing parked in overflow: internal invariant
		// violated (a live vertex must be findable). Fail closed.
		return false
	}
	b.base = minK
	b.cur = 0
	b.opened = true
	b.overflow = bitset.NewFrontier(b.n)
	for i := range b.window {
		b.window[i] = nil
	}
	for _, v := range members {
		off64 := b.key(b.pri[v]) - b.base
		if off64 >= int64(b.nb) {
			b.overflow.Add(v)
			continue
		}
		off := int(off64)
		if b.window[off] == nil {
			b.window[off] = bitset.NewFrontier(b.n)
		}
		b.window[off].Add(v)
	}
	return true
}

// PeekBucket returns a clone of the next bucket that NextBucket would pop
// — its live members and priority — without draining it. Returns
// (nil, 0, false) when nothing live remains. The returned frontier is
// independent of the structure (safe to hand to the speculative planner).
func (b *Buckets) PeekBucket() (*bitset.Frontier, int64, bool) {
	if b.live == 0 {
		return nil, 0, false
	}
	// The next bucket is the minimum live key across the whole structure;
	// compute it directly from pri (O(n) worst case but only over parked
	// vertices reachable via window/overflow bits).
	minK := int64(math.MaxInt64)
	scan := func(f *bitset.Frontier) {
		if f == nil {
			return
		}
		f.Range(func(v int) bool {
			p := b.pri[v]
			if p == noPri {
				return true
			}
			k := b.key(p)
			if b.opened {
				if off := k - b.base; off < int64(b.cur) {
					k = b.base + int64(b.cur)
				}
			}
			if k < minK {
				minK = k
			}
			return true
		})
	}
	if b.opened {
		for s := b.cur; s < b.nb; s++ {
			scan(b.window[s])
		}
	}
	scan(b.overflow)
	if minK == math.MaxInt64 {
		return nil, 0, false
	}
	out := bitset.NewFrontier(b.n)
	collectAt := func(f *bitset.Frontier) {
		if f == nil {
			return
		}
		f.Range(func(v int) bool {
			p := b.pri[v]
			if p == noPri {
				return true
			}
			k := b.key(p)
			if b.opened {
				if off := k - b.base; off < int64(b.cur) {
					k = b.base + int64(b.cur)
				}
			}
			if k == minK {
				out.Add(v)
			}
			return true
		})
	}
	if b.opened {
		for s := b.cur; s < b.nb; s++ {
			collectAt(b.window[s])
		}
	}
	collectAt(b.overflow)
	return out, b.fromKey(minK), true
}

// fromKey maps a normalized key back to the caller's priority space.
func (b *Buckets) fromKey(k int64) int64 {
	if b.order == Decreasing {
		return -k
	}
	return k
}

// ensure panics on out-of-range vertex IDs with a clear message rather
// than an index fault deep in the bitset.
func (b *Buckets) ensure(v int) {
	if v < 0 || v >= b.n {
		panic("bucket: vertex id out of range")
	}
}
