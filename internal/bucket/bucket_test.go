package bucket

import (
	"math/rand"
	"sort"
	"testing"
)

// popAll drains the structure, returning the sequence of (priority, sorted
// member) pairs.
type popped struct {
	pri     int64
	members []int
}

func drain(b *Buckets) []popped {
	var out []popped
	for {
		f, pri, ok := b.NextBucket()
		if !ok {
			return out
		}
		out = append(out, popped{pri, f.Members()})
	}
}

func TestBucketsDrainIncreasing(t *testing.T) {
	b := MakeBuckets(16, Increasing, 4)
	ins := map[int]int64{3: 7, 5: 2, 9: 2, 1: 100, 12: 7}
	for v, p := range ins {
		b.UpdateBucket(v, p)
	}
	if got := b.Pending(); got != len(ins) {
		t.Fatalf("Pending = %d, want %d", got, len(ins))
	}
	got := drain(b)
	want := []popped{
		{2, []int{5, 9}},
		{7, []int{3, 12}},
		{100, []int{1}},
	}
	checkPops(t, got, want)
	if b.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", b.Pending())
	}
}

func TestBucketsDrainDecreasing(t *testing.T) {
	b := MakeBuckets(16, Decreasing, 4)
	for v, p := range map[int]int64{3: 7, 5: 2, 9: 2, 1: 100, 12: 7} {
		b.UpdateBucket(v, p)
	}
	got := drain(b)
	want := []popped{
		{100, []int{1}},
		{7, []int{3, 12}},
		{2, []int{5, 9}},
	}
	checkPops(t, got, want)
}

// TestBucketsLazyMove pins lazy deletion: a vertex re-prioritized to a
// later bucket before its original bucket is popped must surface only in
// the later bucket.
func TestBucketsLazyMove(t *testing.T) {
	b := MakeBuckets(8, Increasing, 8)
	b.UpdateBucket(2, 1)
	b.UpdateBucket(4, 1)
	b.UpdateBucket(4, 5) // moves before the first pop
	got := drain(b)
	want := []popped{
		{1, []int{2}},
		{5, []int{4}},
	}
	checkPops(t, got, want)
}

// TestBucketsRemove pins lazy removal: a removed vertex never surfaces.
func TestBucketsRemove(t *testing.T) {
	b := MakeBuckets(8, Increasing, 8)
	b.UpdateBucket(2, 1)
	b.UpdateBucket(3, 1)
	b.Remove(2)
	got := drain(b)
	checkPops(t, got, []popped{{1, []int{3}}})
}

// TestBucketsClampIntoCurrent pins the monotone clamp: an update mapping
// at or before the bucket being drained is re-processed in the current
// bucket rather than lost in the past.
func TestBucketsClampIntoCurrent(t *testing.T) {
	b := MakeBuckets(8, Increasing, 8)
	b.UpdateBucket(1, 3)
	f, pri, ok := b.NextBucket()
	if !ok || pri != 3 || f.Count() != 1 {
		t.Fatalf("first pop = (%v, %d, %v), want ({1}, 3, true)", f, pri, ok)
	}
	// Reinsert at the same priority — same-bucket reinsertion, the
	// delta-stepping inner loop.
	b.UpdateBucket(5, 3)
	f, pri, ok = b.NextBucket()
	if !ok || pri != 3 || !f.Contains(5) {
		t.Fatalf("same-bucket reinsertion pop = (%v, %d, %v), want ({5}, 3, true)", f, pri, ok)
	}
}

// TestBucketsOverflowRefill forces priorities far past the window so the
// overflow path and window refill both run.
func TestBucketsOverflowRefill(t *testing.T) {
	b := MakeBuckets(32, Increasing, 2) // 2-wide window: nearly everything overflows
	for v := 0; v < 20; v++ {
		b.UpdateBucket(v, int64(v*13))
	}
	got := drain(b)
	if len(got) != 20 {
		t.Fatalf("popped %d buckets, want 20 singletons", len(got))
	}
	for i, p := range got {
		if p.pri != int64(i*13) || len(p.members) != 1 || p.members[0] != i {
			t.Fatalf("pop %d = %+v, want pri %d member %d", i, p, i*13, i)
		}
	}
}

// TestBucketsPeekMatchesPop pins PeekBucket: it previews exactly what the
// next NextBucket returns, without draining.
func TestBucketsPeekMatchesPop(t *testing.T) {
	b := MakeBuckets(64, Increasing, 4)
	rng := rand.New(rand.NewSource(7))
	for v := 0; v < 40; v++ {
		b.UpdateBucket(v, int64(rng.Intn(50)))
	}
	for {
		pf, ppri, pok := b.PeekBucket()
		f, pri, ok := b.NextBucket()
		if pok != ok {
			t.Fatalf("peek ok=%v, pop ok=%v", pok, ok)
		}
		if !ok {
			break
		}
		if ppri != pri {
			t.Fatalf("peek pri=%d, pop pri=%d", ppri, pri)
		}
		pm, m := pf.Members(), f.Members()
		if !equalInts(pm, m) {
			t.Fatalf("peek members %v != pop members %v", pm, m)
		}
	}
}

// TestBucketsPropertyVsSortedMap is the satellite property test: random
// interleavings of UpdateBucket (monotone: never before the bucket being
// drained) and NextBucket against a sorted-map reference, both orders.
func TestBucketsPropertyVsSortedMap(t *testing.T) {
	for _, order := range []Order{Increasing, Decreasing} {
		for seed := int64(1); seed <= 20; seed++ {
			runBucketProperty(t, order, seed)
		}
	}
}

func runBucketProperty(t *testing.T, order Order, seed int64) {
	t.Helper()
	const n = 128
	rng := rand.New(rand.NewSource(seed))
	nb := 1 + rng.Intn(8) // small windows stress overflow + refill
	b := MakeBuckets(n, order, nb)
	ref := map[int]int64{} // reference: vertex -> live priority

	// floor is the last popped priority: generated updates never map
	// strictly before it (the monotone-progress contract the clamp is
	// built for).
	var floor int64
	hasFloor := false
	randPri := func() int64 {
		p := int64(rng.Intn(200)) - 100
		if hasFloor {
			if order == Increasing && p < floor {
				p = floor + int64(rng.Intn(40))
			}
			if order == Decreasing && p > floor {
				p = floor - int64(rng.Intn(40))
			}
		}
		return p
	}

	for step := 0; step < 300; step++ {
		switch rng.Intn(3) {
		case 0, 1: // batch of updates
			for i := 0; i < 1+rng.Intn(10); i++ {
				v := rng.Intn(n)
				p := randPri()
				b.UpdateBucket(v, p)
				ref[v] = p
			}
		case 2: // pop
			f, pri, ok := b.NextBucket()
			wantMembers, wantPri := refPop(ref, order)
			if ok != (wantMembers != nil) {
				t.Fatalf("seed %d order %v step %d: pop ok=%v, ref ok=%v", seed, order, step, ok, wantMembers != nil)
			}
			if !ok {
				continue
			}
			if pri != wantPri {
				t.Fatalf("seed %d order %v step %d: pop pri=%d, ref pri=%d", seed, order, step, pri, wantPri)
			}
			if got := f.Members(); !equalInts(got, wantMembers) {
				t.Fatalf("seed %d order %v step %d: pop members %v, ref %v", seed, order, step, got, wantMembers)
			}
			for _, v := range wantMembers {
				delete(ref, v)
			}
			floor, hasFloor = pri, true
			if b.Pending() != len(ref) {
				t.Fatalf("seed %d order %v step %d: Pending=%d, ref live=%d", seed, order, step, b.Pending(), len(ref))
			}
		}
	}
	// Final full drain must empty both.
	for {
		f, pri, ok := b.NextBucket()
		wantMembers, wantPri := refPop(ref, order)
		if ok != (wantMembers != nil) {
			t.Fatalf("seed %d order %v drain: ok=%v, ref ok=%v", seed, order, ok, wantMembers != nil)
		}
		if !ok {
			break
		}
		if pri != wantPri || !equalInts(f.Members(), wantMembers) {
			t.Fatalf("seed %d order %v drain: (%d,%v), ref (%d,%v)", seed, order, pri, f.Members(), wantPri, wantMembers)
		}
		for _, v := range wantMembers {
			delete(ref, v)
		}
	}
	if len(ref) != 0 {
		t.Fatalf("seed %d order %v: structure empty but reference holds %v", seed, order, ref)
	}
}

// refPop computes what the reference sorted-map would pop: the extreme
// priority group in drain order, members ascending. Returns (nil, 0) when
// empty.
func refPop(ref map[int]int64, order Order) ([]int, int64) {
	if len(ref) == 0 {
		return nil, 0
	}
	first := true
	var best int64
	for _, p := range ref {
		if first || (order == Increasing && p < best) || (order == Decreasing && p > best) {
			best, first = p, false
		}
	}
	var members []int
	for v, p := range ref {
		if p == best {
			members = append(members, v)
		}
	}
	sort.Ints(members)
	return members, best
}

func checkPops(t *testing.T, got, want []popped) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("popped %d buckets, want %d: got %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].pri != want[i].pri || !equalInts(got[i].members, want[i].members) {
			t.Fatalf("pop %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
